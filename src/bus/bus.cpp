#include "bus/bus.hpp"

#include <algorithm>
#include <stdexcept>

#include "kernel/simulation.hpp"
#include "util/types.hpp"

namespace adriatic::bus {

Bus::Bus(kern::Object& parent, std::string name, BusConfig cfg)
    : Module(parent, std::move(name)),
      cfg_(cfg),
      arbiter_(*this, cfg.arbitration) {
  arbiter_.set_starvation_threshold(cfg.starvation_threshold);
  sim().at_elaboration([this] { check_address_map(); });
}

Bus::Bus(kern::Simulation& sim_, std::string name, BusConfig cfg)
    : Module(sim_, std::move(name)),
      cfg_(cfg),
      arbiter_(*this, cfg.arbitration) {
  arbiter_.set_starvation_threshold(cfg.starvation_threshold);
  sim().at_elaboration([this] { check_address_map(); });
}

void Bus::bind_slave(BusSlaveIf& slave) { slaves_.push_back(&slave); }

void Bus::check_address_map() const {
  for (usize i = 0; i < slaves_.size(); ++i) {
    const addr_t lo_i = slaves_[i]->get_low_add();
    const addr_t hi_i = slaves_[i]->get_high_add();
    if (lo_i > hi_i)
      throw std::logic_error(name() + ": slave with inverted address range");
    for (usize j = i + 1; j < slaves_.size(); ++j) {
      const addr_t lo_j = slaves_[j]->get_low_add();
      const addr_t hi_j = slaves_[j]->get_high_add();
      if (lo_i <= hi_j && lo_j <= hi_i)
        throw std::logic_error(name() + ": overlapping slave address ranges");
    }
  }
}

BusSlaveIf* Bus::decode(addr_t add) const {
  for (BusSlaveIf* s : slaves_)
    if (add >= s->get_low_add() && add <= s->get_high_add()) return s;
  return nullptr;
}

Bus::DmiSlot& Bus::dmi_slot(BusSlaveIf& slave) {
  for (DmiSlot& s : dmi_slots_)
    if (s.slave == &slave) return s;
  DmiSlot slot;
  slot.slave = &slave;
  slot.provider = dynamic_cast<DmiProvider*>(&slave);
  dmi_slots_.push_back(slot);
  if (slot.provider != nullptr) {
    // Slots are append-only, so the captured index survives growth; the
    // provider (a sibling module) shares our lifetime, and invalidations
    // only fire from explicit re-arming during simulation.
    const usize idx = dmi_slots_.size() - 1;
    slot.provider->add_dmi_listener(
        [this, idx] { dmi_slots_[idx].valid = false; });
  }
  return dmi_slots_.back();
}

BusStatus Bus::transfer(addr_t add, word* data, usize len, bool is_read,
                        u32 priority, std::span<const word> wdata,
                        usize* words_done) {
  if (words_done != nullptr) *words_done = 0;
  BusSlaveIf* slave = decode(add);
  if (slave == nullptr) {
    ++stats_.unmapped;
    return BusStatus::kUnmapped;
  }
  // Clamp at the slave's upper boundary: a burst chunk that would cross
  // get_high_add() moves only the mapped prefix (reported via words_done);
  // the burst loop re-decodes the remainder — landing in the next slave
  // with a fresh address phase, or in unmapped space.
  const u64 avail = static_cast<u64>(slave->get_high_add()) - add + 1;
  const usize n = static_cast<usize>(std::min<u64>(len, avail));

  const u32 beats_per_word = ceil_div<u32>(32, cfg_.data_width_bits);
  const kern::Time occupancy =
      cfg_.cycle_time *
      (cfg_.address_cycles +
       static_cast<u64>(n) * beats_per_word * cfg_.data_cycles);

  // Loose-mode direct path (b_transport style): with the bus idle and
  // transactions split — the slave call happens with the bus released
  // either way — arbitration is a foregone conclusion, so skip it and
  // charge the occupancy to the caller's local offset. Non-split configs
  // keep the arbitrated path even in loose mode: holding the bus across a
  // suspending slave call is the paper's Sec. 5.4 deadlock semantics, and
  // the fast path must not mask it.
  BusStatus st;
  if (sim().loose() && cfg_.split_transactions && arbiter_.idle() &&
      sim().current_process() != nullptr) {
    st = transfer_direct(*slave, add, data, n, is_read, wdata, occupancy);
  } else {
    stats_.wait_time += arbiter_.acquire(priority);
    kern::wait(occupancy);
    stats_.busy_time += occupancy;
    stats_.beats += n * beats_per_word;
    if (is_read)
      ++stats_.reads;
    else
      ++stats_.writes;
    if (n > 1) ++stats_.bursts;

    bool ok = true;
    if (cfg_.split_transactions) {
      // Split: the bus is free again while the slave services the request.
      arbiter_.release();
      for (usize i = 0; i < n && ok; ++i) {
        if (is_read) {
          ok = slave->read(add + static_cast<addr_t>(i), data + i);
        } else {
          word w = wdata[i];
          ok = slave->write(add + static_cast<addr_t>(i), &w);
        }
      }
    } else {
      // Blocking: the bus is held for the entire slave call — if the slave
      // suspends (DRCF context switch), every other master is locked out.
      for (usize i = 0; i < n && ok; ++i) {
        if (is_read) {
          ok = slave->read(add + static_cast<addr_t>(i), data + i);
        } else {
          word w = wdata[i];
          ok = slave->write(add + static_cast<addr_t>(i), &w);
        }
      }
      arbiter_.release();
    }
    if (!ok) {
      ++stats_.slave_errors;
      st = BusStatus::kSlaveError;
    } else {
      st = BusStatus::kOk;
    }
  }
  if (st == BusStatus::kOk && words_done != nullptr) *words_done = n;
  return st;
}

BusStatus Bus::transfer_direct(BusSlaveIf& slave, addr_t add, word* data,
                               usize len, bool is_read,
                               std::span<const word> wdata,
                               kern::Time occupancy) {
  const u32 beats_per_word = ceil_div<u32>(32, cfg_.data_width_bits);
  ++stats_.direct_calls;
  kern::wait(occupancy);  // accumulates on the caller's local offset
  stats_.busy_time += occupancy;
  stats_.beats += len * beats_per_word;
  if (is_read)
    ++stats_.reads;
  else
    ++stats_.writes;
  if (len > 1) ++stats_.bursts;

  // DMI: when the slave granted a pointer over the whole span, move the
  // words directly and charge the slave-side per-word latency in one go.
  // Grants are re-requested lazily after invalidation, so an armed fault
  // interposer (which declines) regains sight of every access.
  DmiSlot& slot = dmi_slot(slave);
  if (slot.provider != nullptr) {
    const auto usable = [&](const DmiSlot& s) {
      return s.valid && s.region.covers(add, len) &&
             (is_read || s.region.allow_write);
    };
    if (!usable(slot)) {
      // Page-granular providers (paged memory) grant one page at a time, so
      // a cached region that does not cover — or cannot write — this access
      // is not a DMI refusal: re-request at the new address and only fall
      // back to slave calls if the provider declines.
      if (slot.valid) ++stats_.dmi_regrants;
      slot.valid = slot.provider->get_dmi(add, &slot.region);
    }
    if (usable(slot)) {
      const kern::Time lat = is_read ? slot.region.read_latency
                                     : slot.region.write_latency;
      if (!lat.is_zero()) kern::wait(lat * static_cast<u64>(len));
      if (is_read) {
        for (usize i = 0; i < len; ++i) data[i] = *slot.region.at(
            add + static_cast<addr_t>(i));
      } else {
        for (usize i = 0; i < len; ++i)
          *slot.region.at(add + static_cast<addr_t>(i)) = wdata[i];
      }
      stats_.dmi_words += len;
      return BusStatus::kOk;
    }
  }

  bool ok = true;
  for (usize i = 0; i < len && ok; ++i) {
    if (is_read) {
      ok = slave.read(add + static_cast<addr_t>(i), data + i);
    } else {
      word w = wdata[i];
      ok = slave.write(add + static_cast<addr_t>(i), &w);
    }
  }
  if (!ok) {
    ++stats_.slave_errors;
    return BusStatus::kSlaveError;
  }
  return BusStatus::kOk;
}

BusStatus Bus::read(addr_t add, word* data, u32 priority) {
  return transfer(add, data, 1, true, priority, {});
}

BusStatus Bus::write(addr_t add, word* data, u32 priority) {
  return transfer(add, nullptr, 1, false, priority, std::span<const word>(data, 1));
}

BusStatus Bus::burst_read(addr_t add, std::span<word> data, u32 priority) {
  usize done = 0;
  while (done < data.size()) {
    const usize chunk = std::min<usize>(cfg_.max_burst, data.size() - done);
    usize moved = 0;
    const BusStatus st =
        transfer(add + static_cast<addr_t>(done), data.data() + done, chunk,
                 true, priority, {}, &moved);
    if (st != BusStatus::kOk) return st;
    done += moved;  // may be < chunk when the chunk hit a slave boundary
  }
  return BusStatus::kOk;
}

BusStatus Bus::burst_write(addr_t add, std::span<const word> data,
                           u32 priority) {
  usize done = 0;
  while (done < data.size()) {
    const usize chunk = std::min<usize>(cfg_.max_burst, data.size() - done);
    usize moved = 0;
    const BusStatus st =
        transfer(add + static_cast<addr_t>(done), nullptr, chunk, false,
                 priority, data.subspan(done, chunk), &moved);
    if (st != BusStatus::kOk) return st;
    done += moved;  // may be < chunk when the chunk hit a slave boundary
  }
  return BusStatus::kOk;
}

double Bus::utilization() const {
  const auto elapsed = sim().now().picoseconds();
  if (elapsed == 0) return 0.0;
  return static_cast<double>(stats_.busy_time.picoseconds()) /
         static_cast<double>(elapsed);
}

}  // namespace adriatic::bus
