// Bus interfaces. BusSlaveIf reproduces the paper's `bus_slv_if` verbatim
// (Sec. 5.2): address-range discovery via get_low_add()/get_high_add() is
// what lets the DRCF transformation build its routing multiplexer — the
// paper's Sec. 5.4 limitation 2 makes this pair mandatory.
#pragma once

#include <span>

#include "kernel/channel.hpp"
#include "util/types.hpp"

namespace adriatic::bus {

/// Word type carried by the bus (the paper's sc_int<DATAW> with DATAW=32).
using word = i32;
/// Address type (the paper's sc_uint<ADDW>).
using addr_t = u32;

class BusSlaveIf : public virtual kern::Interface {
 public:
  [[nodiscard]] virtual addr_t get_low_add() const = 0;
  [[nodiscard]] virtual addr_t get_high_add() const = 0;
  /// Word read/write; returns false on error. May block (split transaction)
  /// when called from a thread process.
  virtual bool read(addr_t add, word* data) = 0;
  virtual bool write(addr_t add, word* data) = 0;
};

enum class BusStatus : u8 {
  kOk,
  kUnmapped,    ///< No slave decodes the address.
  kSlaveError,  ///< Slave returned false.
};

/// Master-side interface: what a module's `mst_port` sees. Implemented by
/// arbitrated buses and by zero-contention direct links.
class BusMasterIf : public virtual kern::Interface {
 public:
  virtual BusStatus read(addr_t add, word* data, u32 priority) = 0;
  virtual BusStatus write(addr_t add, word* data, u32 priority) = 0;
  /// Burst transfers move len consecutive words; the bus is arbitrated once.
  virtual BusStatus burst_read(addr_t add, std::span<word> data,
                               u32 priority) = 0;
  virtual BusStatus burst_write(addr_t add, std::span<const word> data,
                                u32 priority) = 0;

  // Convenience overloads with default priority.
  BusStatus read(addr_t add, word* data) { return read(add, data, 0); }
  BusStatus write(addr_t add, word* data) { return write(add, data, 0); }
};

}  // namespace adriatic::bus
