// Bus interfaces. BusSlaveIf reproduces the paper's `bus_slv_if` verbatim
// (Sec. 5.2): address-range discovery via get_low_add()/get_high_add() is
// what lets the DRCF transformation build its routing multiplexer — the
// paper's Sec. 5.4 limitation 2 makes this pair mandatory.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "kernel/channel.hpp"
#include "kernel/time.hpp"
#include "util/types.hpp"

namespace adriatic::bus {

/// Word type carried by the bus (the paper's sc_int<DATAW> with DATAW=32).
using word = i32;
/// Address type (the paper's sc_uint<ADDW>).
using addr_t = u32;

class BusSlaveIf : public virtual kern::Interface {
 public:
  [[nodiscard]] virtual addr_t get_low_add() const = 0;
  [[nodiscard]] virtual addr_t get_high_add() const = 0;
  /// Word read/write; returns false on error. May block (split transaction)
  /// when called from a thread process.
  virtual bool read(addr_t add, word* data) = 0;
  virtual bool write(addr_t add, word* data) = 0;
};

enum class BusStatus : u8 {
  kOk,
  kUnmapped,    ///< No slave decodes the address.
  kSlaveError,  ///< Slave returned false.
};

/// DMI-style direct-memory descriptor (TLM-2 get_direct_mem_ptr analogue):
/// a bounds-checked host pointer into a slave's backing store plus the
/// per-word latencies the fast path must still charge. Only consulted in
/// TimingMode::kLoose — the bus-cycle-accurate path never uses it, so
/// golden traces are unaffected by grants.
struct DmiRegion {
  word* data = nullptr;  ///< Host pointer to the word at address `low`.
  addr_t low = 0;        ///< Inclusive granted range.
  addr_t high = 0;
  kern::Time read_latency;   ///< Slave-side cost per word read.
  kern::Time write_latency;  ///< Slave-side cost per word written.
  bool allow_write = true;   ///< False for ROMs: writes take the slow path.

  /// True when [add, add+len) lies inside the granted range.
  [[nodiscard]] bool covers(addr_t add, usize len) const noexcept {
    return data != nullptr && len > 0 && add >= low && add <= high &&
           static_cast<u64>(high) - add + 1 >= len;
  }
  [[nodiscard]] word* at(addr_t add) const noexcept {
    return data + (add - low);
  }
};

/// Optional capability of a BusSlaveIf implementation: grants DmiRegions to
/// initiators (discovered by the bus via dynamic_cast) and notifies them
/// when every outstanding grant becomes invalid — on remap, or when a fault
/// interposer arms so injection sees every access again.
class DmiProvider {
 public:
  virtual ~DmiProvider() = default;

  /// Requests a region containing `add`. Returns false (leaving `out`
  /// untouched) when the slave declines — not backed by plain storage, or
  /// interposed by an armed fault plan.
  virtual bool get_dmi(addr_t add, DmiRegion* out) = 0;

  /// Registers a callback invoked by invalidate_dmi(). Listeners are never
  /// unregistered: callers must outlive the provider or arrange teardown so
  /// no invalidation fires after they die (module trees are destroyed
  /// together, and invalidations only happen during explicit re-arming).
  void add_dmi_listener(std::function<void()> cb) {
    dmi_listeners_.push_back(std::move(cb));
  }

  /// Revokes every grant handed out so far: all cached descriptors must be
  /// dropped and re-requested.
  void invalidate_dmi() {
    for (auto& cb : dmi_listeners_) cb();
  }

 private:
  std::vector<std::function<void()>> dmi_listeners_;
};

/// Master-side interface: what a module's `mst_port` sees. Implemented by
/// arbitrated buses and by zero-contention direct links.
class BusMasterIf : public virtual kern::Interface {
 public:
  virtual BusStatus read(addr_t add, word* data, u32 priority) = 0;
  virtual BusStatus write(addr_t add, word* data, u32 priority) = 0;
  /// Burst transfers move len consecutive words; the bus is arbitrated once.
  virtual BusStatus burst_read(addr_t add, std::span<word> data,
                               u32 priority) = 0;
  virtual BusStatus burst_write(addr_t add, std::span<const word> data,
                                u32 priority) = 0;

  // Convenience overloads with default priority.
  BusStatus read(addr_t add, word* data) { return read(add, data, 0); }
  BusStatus write(addr_t add, word* data) { return write(add, data, 0); }
};

}  // namespace adriatic::bus
