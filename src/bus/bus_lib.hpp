// Umbrella header for the bus substrate.
#pragma once

#include "bus/arbiter.hpp"
#include "bus/bridge.hpp"
#include "bus/bus.hpp"
#include "bus/direct_link.hpp"
#include "bus/interfaces.hpp"
