// Arbitrated system bus at the bus-cycle-accurate abstraction of the ADRIATIC
// flow: address decoding over registered slaves, per-beat cycle costs,
// pluggable arbitration, and the split-vs-blocking transaction distinction
// that drives the paper's Sec. 5.4 deadlock discussion.
#pragma once

#include <string>
#include <vector>

#include "bus/arbiter.hpp"
#include "bus/interfaces.hpp"
#include "kernel/module.hpp"
#include "kernel/time.hpp"
#include "util/stats.hpp"

namespace adriatic::bus {

struct BusConfig {
  kern::Time cycle_time = kern::Time::ns(10);  ///< 100 MHz default.
  u32 data_width_bits = 32;   ///< Bus width; sets beats per context word.
  u32 address_cycles = 1;     ///< Cycles for the address phase.
  u32 data_cycles = 1;        ///< Cycles per data beat.
  ArbPolicy arbitration = ArbPolicy::kPriority;
  /// Split transactions: the bus is released while a slave processes a
  /// request, so other masters (and the DRCF context loader) can use it.
  /// Non-split (blocking): the bus is held for the whole slave call —
  /// the configuration the paper warns deadlocks a self-loading DRCF.
  bool split_transactions = true;
  u32 max_burst = 16;         ///< Longest single arbitration burst.
  /// Arbitration waits beyond this flag the master as starved (see
  /// Arbiter::set_starvation_threshold). Zero disables flagging.
  kern::Time starvation_threshold;
};

struct BusStats {
  u64 reads = 0;
  u64 writes = 0;
  u64 beats = 0;           ///< Data beats moved.
  u64 bursts = 0;          ///< Burst transactions.
  u64 unmapped = 0;        ///< Accesses that decoded to no slave.
  u64 slave_errors = 0;
  u64 direct_calls = 0;    ///< Loose-mode transactions that skipped the
                           ///< arbiter (cost charged to the caller's local
                           ///< offset; see docs/timing_modes.md).
  u64 dmi_words = 0;       ///< Words moved through a DMI pointer instead of
                           ///< per-word slave calls (subset of direct_calls
                           ///< traffic; slave-side stats do not see them).
  u64 dmi_regrants = 0;    ///< Valid cached DMI regions replaced because an
                           ///< access fell outside them — page-granular
                           ///< providers (paged memory) regrant per page.
  kern::Time busy_time;    ///< Time the bus was occupied.
  kern::Time wait_time;    ///< Total master arbitration wait.
};

class Bus : public kern::Module, public BusMasterIf {
 public:
  Bus(kern::Object& parent, std::string name, BusConfig cfg = {});
  Bus(kern::Simulation& sim, std::string name, BusConfig cfg = {});

  /// Registers a slave; its address range comes from get_low_add/high_add.
  /// Ranges are checked for overlap at elaboration.
  void bind_slave(BusSlaveIf& slave);

  // BusMasterIf --------------------------------------------------------------
  BusStatus read(addr_t add, word* data, u32 priority) override;
  BusStatus write(addr_t add, word* data, u32 priority) override;
  BusStatus burst_read(addr_t add, std::span<word> data,
                       u32 priority) override;
  BusStatus burst_write(addr_t add, std::span<const word> data,
                        u32 priority) override;
  using BusMasterIf::read;
  using BusMasterIf::write;

  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const BusConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const Arbiter& arbiter() const noexcept { return arbiter_; }
  /// Fraction of elapsed simulated time the bus carried a transaction.
  [[nodiscard]] double utilization() const;
  [[nodiscard]] usize slave_count() const noexcept { return slaves_.size(); }

 private:
  /// Per-slave DMI bookkeeping: `provider` is the one-time dynamic_cast
  /// result (nullptr = slave is not a DmiProvider, never probe again);
  /// `valid` marks a usable cached region. Slots are append-only so the
  /// invalidation listeners' captured indices stay stable.
  struct DmiSlot {
    BusSlaveIf* slave = nullptr;
    DmiProvider* provider = nullptr;
    bool valid = false;
    DmiRegion region;
  };

  void check_address_map() const;
  [[nodiscard]] BusSlaveIf* decode(addr_t add) const;
  /// One arbitrated transaction, clamped at the decoded slave's upper
  /// boundary: at most `len` words, never crossing get_high_add(). The
  /// words actually moved are reported via `words_done` (burst loops use it
  /// to continue into the next slave with a fresh address phase).
  BusStatus transfer(addr_t add, word* data, usize len, bool is_read,
                     u32 priority, std::span<const word> wdata,
                     usize* words_done = nullptr);
  /// Loose-mode direct path: no arbitration, occupancy charged to the
  /// caller's local offset; uses DMI when the slave granted it.
  BusStatus transfer_direct(BusSlaveIf& slave, addr_t add, word* data,
                            usize len, bool is_read,
                            std::span<const word> wdata,
                            kern::Time occupancy);
  [[nodiscard]] DmiSlot& dmi_slot(BusSlaveIf& slave);

  BusConfig cfg_;
  Arbiter arbiter_;
  std::vector<BusSlaveIf*> slaves_;
  std::vector<DmiSlot> dmi_slots_;
  BusStats stats_;
};

}  // namespace adriatic::bus
