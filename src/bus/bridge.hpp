// Bus-to-bus bridge: appears as a slave window on the upstream bus and
// forwards decoded accesses as a master on the downstream bus. Lets designs
// model hierarchical interconnects (e.g. a slow peripheral bus behind the
// system bus).
#pragma once

#include <string>

#include "bus/interfaces.hpp"
#include "kernel/module.hpp"
#include "kernel/port.hpp"

namespace adriatic::bus {

class Bridge : public kern::Module, public BusSlaveIf {
 public:
  /// Forwards upstream accesses in [low, high] to the downstream bus,
  /// shifted by `offset` (downstream address = upstream address + offset).
  Bridge(kern::Object& parent, std::string name, addr_t low, addr_t high,
         i64 offset = 0)
      : Module(parent, std::move(name)),
        mst_port(*this, "mst_port"),
        low_(low),
        high_(high),
        offset_(offset) {}

  kern::Port<BusMasterIf> mst_port;

  [[nodiscard]] addr_t get_low_add() const override { return low_; }
  [[nodiscard]] addr_t get_high_add() const override { return high_; }

  bool read(addr_t add, word* data) override {
    ++forwarded_;
    return mst_port->read(translate(add), data, 0) == BusStatus::kOk;
  }
  bool write(addr_t add, word* data) override {
    ++forwarded_;
    return mst_port->write(translate(add), data, 0) == BusStatus::kOk;
  }

  [[nodiscard]] u64 forwarded() const noexcept { return forwarded_; }

 private:
  [[nodiscard]] addr_t translate(addr_t add) const {
    return static_cast<addr_t>(static_cast<i64>(add) + offset_);
  }

  addr_t low_;
  addr_t high_;
  i64 offset_;
  u64 forwarded_ = 0;
};

}  // namespace adriatic::bus
