#include "drcf/prefetch_policy.hpp"

namespace adriatic::drcf {

const char* to_string(PrefetchPolicy policy) {
  switch (policy) {
    case PrefetchPolicy::kOnDemand:
      return "on_demand";
    case PrefetchPolicy::kStaticNext:
      return "static_next";
    case PrefetchPolicy::kHistory:
      return "history";
    case PrefetchPolicy::kHybrid:
      return "hybrid";
  }
  return "?";
}

void PrefetchPredictor::observe_switch(usize from, usize to) {
  if (policy_ != PrefetchPolicy::kHistory &&
      policy_ != PrefetchPolicy::kHybrid)
    return;
  if (from == to) return;
  ++edges_[from][to];
}

std::optional<usize> PrefetchPredictor::static_successor(usize current) const {
  if (current >= static_next_.size()) return std::nullopt;
  const usize next = static_next_[current];
  if (next == current) return std::nullopt;
  return next;
}

std::optional<usize> PrefetchPredictor::history_successor(usize current) const {
  const auto it = edges_.find(current);
  if (it == edges_.end()) return std::nullopt;
  std::optional<usize> best;
  u64 best_count = 0;
  for (const auto& [to, count] : it->second) {
    if (count > best_count) {  // strict: equal counts keep the lowest index
      best = to;
      best_count = count;
    }
  }
  return best;
}

std::optional<usize> PrefetchPredictor::predict(usize current) const {
  switch (policy_) {
    case PrefetchPolicy::kOnDemand:
      return std::nullopt;
    case PrefetchPolicy::kStaticNext:
      return static_successor(current);
    case PrefetchPolicy::kHistory:
      return history_successor(current);
    case PrefetchPolicy::kHybrid: {
      const auto annotated = static_successor(current);
      return annotated.has_value() ? annotated : history_successor(current);
    }
  }
  return std::nullopt;
}

}  // namespace adriatic::drcf
