#include "drcf/drcf.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "kernel/sched_trace.hpp"
#include "kernel/simulation.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace adriatic::drcf {

const char* to_string(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kFailFast:
      return "fail_fast";
    case RecoveryPolicy::kRetryBackoff:
      return "retry_backoff";
    case RecoveryPolicy::kFallbackContext:
      return "fallback_context";
    case RecoveryPolicy::kScrub:
      return "scrub";
  }
  return "?";
}

Drcf::Drcf(kern::Object& parent, std::string name, DrcfConfig cfg)
    : Module(parent, std::move(name)),
      clk(*this, "clk", /*min_bindings=*/0),
      mst_port(*this, "mst_port"),
      cfg_(std::move(cfg)),
      slot_table_(cfg_.slots, cfg_.replacement),
      predictor_(cfg_.prefetch.policy, cfg_.prefetch.static_next),
      config_cache_(cfg_.prefetch.cache_slots),
      load_request_event_(sim(), this->name() + ".load_request"),
      any_loaded_event_(sim(), this->name() + ".loaded"),
      fabric_idle_event_(sim(), this->name() + ".fabric_idle"),
      drain_event_(sim(), this->name() + ".drain") {
  site_id_ = kern::sched_name_hash(this->name());
  if (!cfg_.fetch_faults.empty()) {
    fetch_interposer_ = std::make_unique<fault::BusFaultInterposer>(
        *this, "fetch_faults", cfg_.fetch_faults);
    fetch_interposer_->set_ledger(&ledger_);
  }
  spawn_thread("arb_and_instr", [this] { arb_and_instr(); }).set_daemon();
}

usize Drcf::add_context(bus::BusSlaveIf& inner, ContextParams params) {
  if (params.size_words == 0)
    params.size_words = cfg_.technology.context_words(params.gates);
  if (params.size_words == 0)
    throw std::invalid_argument(
        name() + ": context needs size_words or gates to derive it");
  // Address ranges of contexts must not overlap — the multiplexer routes by
  // address (the union interface the transformation builds).
  for (const auto& c : contexts_) {
    if (inner.get_low_add() <= c->inner->get_high_add() &&
        c->inner->get_low_add() <= inner.get_high_add())
      throw std::logic_error(name() + ": overlapping context address ranges");
  }
  auto ctx = std::make_unique<Context>();
  ctx->inner = &inner;
  ctx->params = params;
  const std::string event_name =
      name() + ".ctx" + std::to_string(contexts_.size()) + ".loaded";
  ctx->loaded_event = std::make_unique<kern::Event>(sim(), event_name);
  ctx->trace_id = kern::sched_name_hash(event_name);
  contexts_.push_back(std::move(ctx));
  return contexts_.size() - 1;
}

bus::addr_t Drcf::get_low_add() const {
  bus::addr_t lo = std::numeric_limits<bus::addr_t>::max();
  for (const auto& c : contexts_) lo = std::min(lo, c->inner->get_low_add());
  return contexts_.empty() ? 0 : lo;
}

bus::addr_t Drcf::get_high_add() const {
  bus::addr_t hi = 0;
  for (const auto& c : contexts_) hi = std::max(hi, c->inner->get_high_add());
  return hi;
}

std::optional<usize> Drcf::decode(bus::addr_t add) const {
  for (usize i = 0; i < contexts_.size(); ++i) {
    const auto* inner = contexts_[i]->inner;
    if (add >= inner->get_low_add() && add <= inner->get_high_add()) return i;
  }
  return std::nullopt;
}

bool Drcf::read(bus::addr_t add, bus::word* data) {
  return forward(add, data, true);
}

bool Drcf::write(bus::addr_t add, bus::word* data) {
  return forward(add, data, false);
}

bool Drcf::forward(bus::addr_t add, bus::word* data, bool is_read) {
  const auto decoded = decode(add);
  if (!decoded.has_value()) return false;
  usize target = *decoded;

  // Scheduler steps 2-4: forward to the active context, or suspend the call
  // across a context switch.
  bool counted_miss = false;
  const kern::Time t0 = sim().now();
  for (;;) {
    // Graceful degradation: a context that terminally failed to load under
    // kFallbackContext retargets every call to the fallback (this also
    // covers calls issued long after the give-up happened).
    if (contexts_[target]->gave_up && !retarget_to_fallback(target, add))
      return false;
    Context& ctx = *contexts_[target];
    const auto slot = slot_table_.lookup(target);
    if (slot.has_value()) {
      if (cfg_.slots == 1 && reconfiguring_) {
        // Single-context fabric is unusable while reconfiguring, even for
        // the (about-to-be-replaced) resident context.
        ++ctx.stats.blocked_accesses;
        while (reconfiguring_) kern::wait(fabric_idle_event_);
        continue;  // residency may have changed; re-route
      }
      if (counted_miss) {
        ctx.stats.blocked_time += sim().now() - t0;
        ctx.loaded_by_prefetch = false;  // the caller waited: nothing hidden
      } else {
        ++stats_.hits;
        if (ctx.loaded_by_prefetch) {
          // First call into a prefetched context: the whole fetch happened
          // off the demand path.
          ctx.loaded_by_prefetch = false;
          ++stats_.prefetch_hits;
          stats_.hidden_latency += ctx.last_fetch_duration;
        }
      }
      // Sec. 5.3 step 2/3 ordering: a call may only be forwarded to a
      // context that is resident on a fabric not mid-reconfiguration.
      ADRIATIC_CHECK(cfg_.slots > 1 || !reconfiguring_,
                     "forwarded a call through a single-slot fabric that is "
                     "still reconfiguring (Sec. 5.3 step 4 incomplete)");
      // Pin the context so arb_and_instr cannot reconfigure it away while
      // the forwarded call is in flight.
      slot_table_.touch(*slot);
      ++ctx.pins;
      ++ctx.stats.accesses;
      ++forward_count_;  // useful work for the thrash detector
      const bool ok =
          is_read ? ctx.inner->read(add, data) : ctx.inner->write(add, data);
      --ctx.pins;
      drain_event_.notify();
      return ok;
    }
    if (!counted_miss) {
      counted_miss = true;
      ++stats_.misses;
      ++ctx.stats.blocked_accesses;
      note_demand_miss(target, ctx);
    }
    ++ctx.waiters;
    request_load(target);
    kern::wait(*ctx.loaded_event);
    --ctx.waiters;
    drain_event_.notify();
    if (ctx.load_failed) {
      if (ctx.gave_up) continue;  // loop top retargets to the fallback
      return false;               // configuration fetch failed
    }
  }
}

void Drcf::request_load(usize ctx) {
  request_load_impl(ctx, /*is_prefetch=*/false, /*fill_only=*/false);
}

void Drcf::issue_prefetch(usize ctx, bool fill_only) {
  request_load_impl(ctx, /*is_prefetch=*/true, fill_only);
}

void Drcf::request_load_impl(usize ctx, bool is_prefetch, bool fill_only) {
  Context& c = *contexts_.at(ctx);
  if (c.load_pending) {
    // A demand joining an in-flight prefetch promotes it: the load keeps its
    // queue position but completes (and fails) with demand semantics.
    if (!is_prefetch && c.pending_is_prefetch) c.pending_is_prefetch = false;
    return;
  }
  if (c.gave_up) return;  // terminally failed; never reloaded
  if (slot_table_.lookup(ctx).has_value()) return;
  // Hybrid retargeting: a demand arrival cancels queued mispredicted
  // prefetches so its own fetch starts sooner.
  if (!is_prefetch && cfg_.prefetch.policy == PrefetchPolicy::kHybrid)
    drop_queued_prefetches(ctx);
  c.load_pending = true;
  c.load_failed = false;  // a fresh attempt
  c.pending_is_prefetch = is_prefetch;
  c.pending_fill_only = fill_only;
  load_queue_.push_back(ctx);
  load_request_event_.notify();
}

void Drcf::drop_queued_prefetches(usize demanded) {
  for (usize i = 0; i < load_queue_.size();) {
    const usize q = load_queue_[i];
    Context& c = *contexts_[q];
    if (q == demanded || !c.pending_is_prefetch) {
      ++i;
      continue;
    }
    // Unstarted prefetch: nothing waits on it, so it just disappears.
    c.load_pending = false;
    c.pending_is_prefetch = false;
    c.pending_fill_only = false;
    ++stats_.prefetch_aborts;
    emit_sched_prefetch(q);
    load_queue_.erase(load_queue_.begin() +
                      static_cast<std::ptrdiff_t>(i));
  }
}

void Drcf::note_demand_miss(usize target, Context& ctx) {
  if (cfg_.prefetch.policy == PrefetchPolicy::kOnDemand &&
      !config_cache_.enabled())
    return;  // base model: nothing to attribute the miss to
  if (ctx.load_pending && ctx.pending_is_prefetch) {
    // The demanded context is already being prefetched; the caller joins
    // the load and only waits out the remainder of the fetch.
    ++stats_.prefetch_hits;
    if (ctx.fetch_in_progress)
      stats_.hidden_latency += sim().now() - ctx.fetch_started;
    ctx.pending_is_prefetch = false;  // promote to a demand load
    return;
  }
  if (cache_covers(target)) return;  // counted as a cache hit at install
  if (cfg_.prefetch.policy != PrefetchPolicy::kOnDemand)
    ++stats_.prefetch_misses;
}

bool Drcf::cache_covers(usize target) const {
  if (!config_cache_.enabled() || !cfg_.model_config_traffic) return false;
  if (!config_cache_.contains(target)) return false;
  const u64 expected = contexts_[target]->params.expected_digest;
  return expected == 0 || config_cache_.digest(target) == expected;
}

std::vector<usize> Drcf::resident_contexts() const {
  std::vector<usize> r;
  for (u32 slot = 0; slot < slot_table_.slots(); ++slot) {
    const auto ctx = slot_table_.resident(slot);
    if (ctx.has_value()) r.push_back(*ctx);
  }
  return r;
}

bool Drcf::hybrid_demand_waiting(usize current) const {
  for (const usize q : load_queue_)
    if (q != current && !contexts_[q]->pending_is_prefetch) return true;
  return false;
}

void Drcf::emit_sched_prefetch(usize target) {
  kern::SchedulerObserver* obs = sim().observer();
  if (obs == nullptr) return;
  obs->on_record(kern::SchedRecord{kern::SchedRecord::Kind::kPrefetch,
                                   sim().now().picoseconds(),
                                   sim().delta_count(),
                                   contexts_[target]->trace_id});
}

void Drcf::emit_sched_migrate(usize target) {
  kern::SchedulerObserver* obs = sim().observer();
  if (obs == nullptr) return;
  obs->on_record(kern::SchedRecord{kern::SchedRecord::Kind::kMigrate,
                                   sim().now().picoseconds(),
                                   sim().delta_count(),
                                   contexts_[target]->trace_id});
}

std::optional<TaskState> Drcf::checkpoint_task(usize ctx) {
  if (ctx >= contexts_.size()) return std::nullopt;
  Context& c = *contexts_[ctx];
  // Checkpoints only happen at context-switch boundaries: a context with
  // in-flight forwarded calls, woken waiters, or a load under way is not at
  // one, and snapshotting it would capture a half-written window.
  if (c.pins != 0 || c.waiters != 0 || c.load_pending) return std::nullopt;
  const bus::addr_t lo = c.inner->get_low_add();
  const u32 window =
      static_cast<u32>(c.inner->get_high_add() - lo + 1);
  TaskState s;
  s.context_id = ctx;
  s.config_digest = c.params.expected_digest;
  s.window_words = window;
  s.progress_cursor = c.stats.accesses;
  s.image.resize(window, 0);
  for (u32 i = 0; i < window; ++i) {
    bus::word w = 0;
    // Side-door capture: read the wrapped module directly, bypassing the
    // scheduler (no pin, no residency requirement, no simulated time).
    if (c.inner->read(lo + i, &w)) s.image[i] = w;
  }
  ++stats_.checkpoints;
  emit_sched_migrate(ctx);
  return s;
}

RestoreError Drcf::restore_task(usize ctx, const TaskState& state) {
  const auto reject = [this](RestoreError err, bus::addr_t addr, u64 arg) {
    ++stats_.restore_rejects;
    ledger_.append(fault::FaultEventKind::kMigrateError,
                   sim().now().picoseconds(), site_id_, addr,
                   static_cast<u64>(err) << 32 | (arg & 0xFFFFFFFFu));
    return err;
  };
  if (ctx >= contexts_.size())
    return reject(RestoreError::kUnknownContext, 0, ctx);
  Context& c = *contexts_[ctx];
  const bus::addr_t lo = c.inner->get_low_add();
  // Every check runs before the first register write: a rejected restore
  // must never leave the destination half-overwritten.
  if (state.image.size() != state.window_words)
    return reject(RestoreError::kTruncatedImage, lo,
                  static_cast<u64>(state.image.size()));
  const u32 window =
      static_cast<u32>(c.inner->get_high_add() - lo + 1);
  if (window != state.window_words)
    return reject(RestoreError::kGeometryMismatch, lo, state.window_words);
  if (c.pins != 0 || c.waiters != 0 || c.load_pending)
    return reject(RestoreError::kBusyContext, lo, ctx);
  if (state.config_digest != 0 && c.params.expected_digest != 0 &&
      state.config_digest != c.params.expected_digest)
    return reject(RestoreError::kDigestMismatch, lo, state.config_digest);
  for (u32 i = 0; i < window; ++i) {
    bus::word w = state.image[i];
    // Read-only and reserved offsets refuse the write (returning false);
    // their architectural value is derived, not restorable state.
    (void)c.inner->write(lo + i, &w);
  }
  ++stats_.restores;
  emit_sched_migrate(ctx);
  return RestoreError::kNone;
}

void Drcf::park_preempt_snapshot(usize victim) {
  auto snap = checkpoint_task(victim);
  if (!snap.has_value()) return;  // not quiescent: nothing to park
  ++stats_.preempt_parks;
  if (config_cache_.enabled() && config_cache_.contains(victim)) {
    if (config_cache_.park_snapshot(victim, std::move(*snap))) {
      parked_snapshots_.erase(victim);  // plane copy supersedes any old one
      return;
    }
  }
  parked_snapshots_.insert_or_assign(victim, std::move(*snap));
}

bool Drcf::has_parked_snapshot(usize ctx) const {
  return config_cache_.has_snapshot(ctx) ||
         parked_snapshots_.find(ctx) != parked_snapshots_.end();
}

std::optional<TaskState> Drcf::take_parked_snapshot(usize ctx) {
  if (auto s = config_cache_.take_snapshot(ctx); s.has_value()) return s;
  const auto it = parked_snapshots_.find(ctx);
  if (it == parked_snapshots_.end()) return std::nullopt;
  std::optional<TaskState> s = std::move(it->second);
  parked_snapshots_.erase(it);
  return s;
}

bool Drcf::retarget_to_fallback(usize& target, bus::addr_t& add) {
  if (cfg_.recovery.policy != RecoveryPolicy::kFallbackContext) return false;
  if (!cfg_.recovery.fallback_context.has_value()) return false;
  const usize fb = *cfg_.recovery.fallback_context;
  if (fb == target || fb >= contexts_.size()) return false;
  const bus::BusSlaveIf& from = *contexts_[target]->inner;
  const bus::BusSlaveIf& to = *contexts_[fb]->inner;
  const bus::addr_t offset = add - from.get_low_add();
  if (offset > to.get_high_add() - to.get_low_add()) return false;
  ledger_.append(fault::FaultEventKind::kFallback, sim().now().picoseconds(),
                 site_id_, add, static_cast<u64>(target));
  ++stats_.fallback_forwards;
  add = to.get_low_add() + offset;
  target = fb;
  return true;
}

void Drcf::prefetch(usize ctx) {
  if (ctx >= contexts_.size())
    throw std::out_of_range(name() + ": prefetch of unknown context");
  // A prefetch of a context that is already resident, already loading, or
  // terminally failed is a no-op cache hit: no counter, no redundant fetch.
  if (slot_table_.lookup(ctx).has_value()) return;
  if (contexts_[ctx]->load_pending) return;
  if (contexts_[ctx]->gave_up) return;
  ++stats_.prefetches;
  issue_prefetch(ctx, /*fill_only=*/false);
}

void Drcf::close_residency(Context& c, kern::Time at) {
  c.stats.active_time += at - c.residency_start;
}

Drcf::FetchResult Drcf::fetch_with_recovery(Context& ctx, usize target,
                                            std::vector<bus::word>& buf) {
  FetchResult res;
  u32 attempt = 1;
  u32 scrubs_left = cfg_.recovery.scrub_refetches;
  kern::Time backoff = cfg_.recovery.backoff;
  bool had_failed_attempt = false;
  for (;;) {
    const FetchOutcome out = fetch_context(ctx, target, buf, &res.digest);
    if (out == FetchOutcome::kOk) {
      if (had_failed_attempt)
        ledger_.append(fault::FaultEventKind::kRecovered,
                       sim().now().picoseconds(), site_id_,
                       ctx.params.config_address, attempt);
      res.ok = true;
      return res;
    }
    if (out == FetchOutcome::kAbortedPrefetch) {
      res.aborted = true;
      return res;
    }
    had_failed_attempt = true;
    if (out == FetchOutcome::kDigestMismatch &&
        cfg_.recovery.policy == RecoveryPolicy::kScrub && scrubs_left > 0) {
      // Scrubbing: the words arrived but were corrupted — re-fetch
      // immediately (no backoff; the source copy is assumed good).
      --scrubs_left;
      ++stats_.scrubs;
      ledger_.append(fault::FaultEventKind::kScrub, sim().now().picoseconds(),
                     site_id_, ctx.params.config_address, target);
      continue;
    }
    if (cfg_.recovery.policy == RecoveryPolicy::kRetryBackoff &&
        attempt < cfg_.recovery.max_attempts) {
      ++attempt;
      ++stats_.fetch_retries;
      ledger_.append(fault::FaultEventKind::kRetry, sim().now().picoseconds(),
                     site_id_, ctx.params.config_address, attempt);
      if (!backoff.is_zero()) kern::wait(backoff);
      backoff = backoff * 2;
      continue;
    }
    return res;
  }
}

void Drcf::fill_cache(usize target, std::vector<bus::word>& buf) {
  Context& ctx = *contexts_[target];
  const kern::Time t0 = sim().now();
  const u64 words_before = stats_.config_words_fetched;
  ctx.fetch_in_progress = true;
  ctx.fetch_started = t0;
  const FetchResult res = fetch_with_recovery(ctx, target, buf);
  ctx.fetch_in_progress = false;
  // Everything a background fill moves over the bus is prefetch traffic,
  // whether the fill succeeded, failed, or was aborted.
  stats_.config_words_prefetched += stats_.config_words_fetched - words_before;
  const bool demand_joined = !ctx.pending_is_prefetch;
  ctx.load_pending = false;
  ctx.pending_is_prefetch = false;
  ctx.pending_fill_only = false;
  if (res.aborted) {
    ++stats_.prefetch_aborts;
    emit_sched_prefetch(target);
  }
  if (res.ok) {
    ctx.last_fetch_duration = sim().now() - t0;
    const std::vector<usize> pinned = resident_contexts();
    const auto ins = config_cache_.insert(target, res.digest,
                                          /*prefetched=*/!demand_joined,
                                          pinned);
    if (ins.evicted.has_value()) ++stats_.cache_evictions;
  }
  // A failed fill with no takers is silent: nothing demanded the context,
  // so no give-up and no load_failed — the next demand miss just fetches
  // over the bus as usual. If callers joined mid-fill, hand the load back
  // to the queue as a demand; it installs from the cache when the fill
  // succeeded and performs its own recovery when it did not.
  if (ctx.waiters > 0) request_load(target);
}

void Drcf::auto_prefetch_after(usize current) {
  if (cfg_.prefetch.policy == PrefetchPolicy::kOnDemand) return;
  const auto predicted = predictor_.predict(current);
  if (!predicted.has_value()) return;
  const usize p = *predicted;
  if (p >= contexts_.size() || p == current) return;
  Context& c = *contexts_[p];
  if (c.load_pending || c.gave_up) return;
  if (slot_table_.lookup(p).has_value()) return;
  // Hybrid prefetches only on an idle configuration path: queued demand
  // loads own the bus first.
  if (cfg_.prefetch.policy == PrefetchPolicy::kHybrid && !load_queue_.empty())
    return;
  if (config_cache_.enabled()) {
    if (cache_covers(p)) return;  // already staged: nothing to fetch
    ++stats_.prefetches;
    issue_prefetch(p, /*fill_only=*/true);
    return;
  }
  // No cache: stage into a FREE fabric slot only — evicting here could
  // displace the context the current caller is about to use.
  bool free_slot = false;
  for (u32 s = 0; s < slot_table_.slots(); ++s) {
    if (!slot_table_.resident(s).has_value()) {
      free_slot = true;
      break;
    }
  }
  if (!free_slot) return;
  ++stats_.prefetches;
  issue_prefetch(p, /*fill_only=*/false);
}

void Drcf::arb_and_instr() {
  std::vector<bus::word> fetch_buf;
  for (;;) {
    while (load_queue_.empty()) kern::wait(load_request_event_);
    const usize target = load_queue_.front();
    load_queue_.erase(load_queue_.begin());
    Context& ctx = *contexts_[target];
    if (slot_table_.lookup(target).has_value()) {
      ctx.load_pending = false;
      ctx.pending_is_prefetch = false;
      ctx.pending_fill_only = false;
      ctx.loaded_event->notify();
      continue;
    }
    if (ctx.pending_is_prefetch) emit_sched_prefetch(target);
    if (ctx.pending_fill_only) {
      // Background cache fill: no slot, no victim, no reconfiguring_ window
      // — the fabric keeps serving calls while the fetch runs. This is the
      // overlap that hides reconfiguration latency.
      fill_cache(target, fetch_buf);
      continue;
    }

    // Choose a slot; an evicted context must first drain — in-flight
    // forwarded calls and already-woken waiters finish before the fabric
    // under them is reprogrammed.
    SlotTable::Victim victim{};
    for (;;) {
      victim = slot_table_.choose(target);
      if (!victim.evicted.has_value()) break;
      Context& old = *contexts_[*victim.evicted];
      if (old.pins == 0 && old.waiters == 0) break;
      kern::wait(drain_event_);
      if (slot_table_.lookup(target).has_value()) break;  // loaded meanwhile
    }
    if (slot_table_.lookup(target).has_value()) {
      ctx.load_pending = false;
      ctx.pending_is_prefetch = false;
      ctx.loaded_event->notify();
      continue;
    }
    const kern::Time t0 = sim().now();
    reconfiguring_ = true;

    if (victim.evicted.has_value()) {
      Context& old = *contexts_[*victim.evicted];
      // Pin/drain protocol: a context with in-flight forwarded calls or
      // just-woken waiters must never be reprogrammed away (Sec. 5.3 step 4
      // may only start once the victim is idle).
      ADRIATIC_CHECK(old.pins == 0 && old.waiters == 0,
                     "evicting a context with in-flight calls or waiters");
      // Preemptive checkpoint: the victim is drained (quiescent), so this
      // is exactly a context-switch boundary — snapshot its task state and
      // park it before the fabric underneath is reprogrammed.
      if (cfg_.preempt_checkpoint) park_preempt_snapshot(*victim.evicted);
      close_residency(old, t0);
      slot_table_.evict(victim.slot);
    }

    // Step 4: generate the configuration reads into the fabric. This is the
    // real bus traffic the paper insists must be modeled. With
    // model_config_traffic off, fall back to the analytical delay of the
    // related-work approaches the paper criticises (Sec. 4, [8]). A context
    // whose configuration already sits in the cache skips the bus fetch
    // entirely — that skipped fetch is the latency the prefetcher hid.
    bool fetch_ok = true;
    bool fetch_aborted = false;
    bool cache_hit = false;
    u64 fetched_digest = 0;
    const u64 words_before = stats_.config_words_fetched;
    if (config_cache_.contains(target) && !cache_covers(target))
      config_cache_.invalidate(target);  // stale copy: fails the integrity
                                         // expectation; refetch from memory
    if (cache_covers(target)) {
      cache_hit = true;
      ++stats_.cache_hits;
      config_cache_.touch(target);
      stats_.config_words_skipped += ctx.params.size_words;
      stats_.hidden_latency += ctx.last_fetch_duration;
      if (config_cache_.was_prefetched(target)) {
        ++stats_.prefetch_hits;
        config_cache_.consume_prefetched(target);
      }
    } else if (cfg_.model_config_traffic) {
      ctx.fetch_in_progress = true;
      ctx.fetch_started = t0;
      const FetchResult res = fetch_with_recovery(ctx, target, fetch_buf);
      ctx.fetch_in_progress = false;
      fetch_ok = res.ok;
      fetch_aborted = res.aborted;
      fetched_digest = res.digest;
      if (res.ok) ctx.last_fetch_duration = sim().now() - t0;
    } else if (cfg_.assumed_fetch_words_per_us > 0.0) {
      const double us = static_cast<double>(ctx.params.size_words) /
                        cfg_.assumed_fetch_words_per_us;
      kern::wait(kern::Time::ps(static_cast<u64>(us * 1e6)));
    }

    if (fetch_aborted) {
      // A hybrid prefetch abandoned mid-fetch for a demand load. Nothing
      // waits on it (a joined demand would have promoted it), so this is
      // not a failure — the slot it vacates stays free.
      ++stats_.prefetch_aborts;
      emit_sched_prefetch(target);
      stats_.config_words_prefetched +=
          stats_.config_words_fetched - words_before;
      ctx.load_pending = false;
      ctx.pending_is_prefetch = false;
      reconfiguring_ = false;
      ctx.loaded_event->notify();
      fabric_idle_event_.notify();
      continue;
    }

    if (!fetch_ok) {
      // The fabric holds no valid configuration for this context; fail the
      // suspended callers instead of installing garbage (or deadlocking).
      // Under kFallbackContext the failure is terminal and the context
      // degrades: forward() retargets its calls from now on.
      ++stats_.load_give_ups;
      ledger_.append(fault::FaultEventKind::kGaveUp, sim().now().picoseconds(),
                     site_id_, ctx.params.config_address, target);
      if (cfg_.recovery.policy == RecoveryPolicy::kFallbackContext &&
          cfg_.recovery.fallback_context.has_value() &&
          *cfg_.recovery.fallback_context != target &&
          *cfg_.recovery.fallback_context < contexts_.size())
        ctx.gave_up = true;
      ctx.load_pending = false;
      ctx.pending_is_prefetch = false;
      ctx.load_failed = true;
      reconfiguring_ = false;
      ctx.loaded_event->notify();
      fabric_idle_event_.notify();
      continue;
    }

    // Technology and designer-specified extra latency.
    const kern::Time extra =
        ctx.params.extra_delay + cfg_.technology.per_switch_overhead;
    if (!extra.is_zero()) kern::wait(extra);

    const kern::Time load_time = sim().now() - t0;
    ctx.stats.reconfig_time += load_time;
    stats_.reconfig_busy_time += load_time;
    stats_.reconfig_energy_j +=
        cfg_.technology.reconfig_power_w * load_time.to_sec();
    ++stats_.switches;
    note_switch();

    // Step ordering: installation happens only at the end of a
    // reconfiguration window, after the configuration fetch completed.
    ADRIATIC_CHECK(reconfiguring_,
                   "context installed outside a reconfiguration window");
    ADRIATIC_CHECK(!slot_table_.resident(victim.slot).has_value(),
                   "context installed into an occupied slot");
    slot_table_.install(victim.slot, target);
    ADRIATIC_CHECK(slot_table_.lookup(target).has_value(),
                   "installed context not resident after install");
    if (!cache_hit && cfg_.model_config_traffic && config_cache_.enabled()) {
      // Keep a copy of the freshly fetched configuration: switching back to
      // this context later becomes a cache hit.
      const std::vector<usize> pinned = resident_contexts();
      const auto ins = config_cache_.insert(target, fetched_digest,
                                            /*prefetched=*/false, pinned);
      if (ins.evicted.has_value()) ++stats_.cache_evictions;
    }
    const bool was_prefetch_load = ctx.pending_is_prefetch;
    ctx.loaded_by_prefetch = was_prefetch_load;
    ctx.residency_start = sim().now();
    ++ctx.stats.activations;
    ctx.load_pending = false;
    ctx.pending_is_prefetch = false;
    reconfiguring_ = false;
    if (active_ctx_signal_ != nullptr)
      active_ctx_signal_->write(static_cast<u32>(target));

    ctx.loaded_event->notify();
    any_loaded_event_.notify_delta();
    fabric_idle_event_.notify();

    // Prediction learns from — and reacts to — demand-driven switches only;
    // a completed prefetch never chains into another prefetch.
    if (!was_prefetch_load &&
        cfg_.prefetch.policy != PrefetchPolicy::kOnDemand) {
      if (last_demand_target_.has_value())
        predictor_.observe_switch(*last_demand_target_, target);
      last_demand_target_ = target;
      auto_prefetch_after(target);
    }
  }
}

void Drcf::note_switch() {
  if (cfg_.thrash_window.is_zero()) return;
  const bool fruitless = forward_count_ == forwards_at_last_switch_;
  forwards_at_last_switch_ = forward_count_;
  // The first switch ever has no "between" interval to judge.
  if (stats_.switches <= 1) return;
  if (!fruitless) {
    fruitless_switches_.clear();
    return;
  }
  const kern::Time now = sim().now();
  fruitless_switches_.push_back(now);
  while (now - fruitless_switches_.front() > cfg_.thrash_window)
    fruitless_switches_.pop_front();
  if (fruitless_switches_.size() >= cfg_.thrash_switches) {
    ++stats_.thrash_alerts;
    log::warn() << name() << ": context thrash: "
                << fruitless_switches_.size()
                << " switches with no useful transactions within "
                << cfg_.thrash_window.str();
    ledger_.append(fault::FaultEventKind::kThrash, now.picoseconds(), site_id_,
                   0, static_cast<u64>(fruitless_switches_.size()));
    fruitless_switches_.clear();
  }
}

bus::BusMasterIf& Drcf::fetch_master() {
  if (fetch_interposer_ == nullptr) return mst_port[0];
  // Late binding: the downstream port binding only exists after elaboration,
  // so the interposer is wired on the first fetch.
  if (!fetch_interposer_->bound()) fetch_interposer_->bind(mst_port[0]);
  return *fetch_interposer_;
}

Drcf::FetchOutcome Drcf::fetch_context(Context& ctx, usize target,
                                       std::vector<bus::word>& buf,
                                       u64* digest_out) {
  bus::BusMasterIf& master = fetch_master();
  const kern::Time start = sim().now();
  const kern::Time watchdog = cfg_.recovery.watchdog;
  u64 remaining = ctx.params.size_words;
  bus::addr_t a = ctx.params.config_address;
  u64 digest = kConfigDigestSeed;
  while (remaining > 0) {
    // Hybrid abort/retarget: a prefetch fetch yields the configuration bus
    // to a demand load at the next chunk boundary. A demand that joined
    // THIS load promoted it (pending_is_prefetch is rechecked live), so an
    // aborted fetch never strands a waiter.
    if (cfg_.prefetch.policy == PrefetchPolicy::kHybrid &&
        ctx.pending_is_prefetch && hybrid_demand_waiting(target))
      return FetchOutcome::kAbortedPrefetch;
    const usize chunk =
        static_cast<usize>(std::min<u64>(cfg_.fetch_burst, remaining));
    buf.assign(chunk, 0);
    const auto st = master.burst_read(a, buf, cfg_.load_priority);
    if (st != bus::BusStatus::kOk) {
      log::error() << name() << ": context " << target
                   << " configuration fetch failed (status "
                   << static_cast<int>(st) << ")";
      ++stats_.fetch_errors;
      ledger_.append(fault::FaultEventKind::kFetchError,
                     sim().now().picoseconds(), site_id_, a,
                     static_cast<u64>(st));
      return FetchOutcome::kBusError;
    }
    for (const bus::word w : buf) digest = config_digest_step(digest, w);
    a += static_cast<bus::addr_t>(chunk);
    remaining -= chunk;
    stats_.config_words_fetched += chunk;
    ctx.stats.config_words_fetched += chunk;
    if (!watchdog.is_zero() && sim().now() - start > watchdog) {
      log::error() << name() << ": context " << target
                   << " configuration fetch aborted by watchdog after "
                   << (sim().now() - start).picoseconds() << " ps";
      ++stats_.watchdog_aborts;
      ++stats_.fetch_errors;
      ledger_.append(fault::FaultEventKind::kWatchdogAbort,
                     sim().now().picoseconds(), site_id_, a,
                     static_cast<u64>(target));
      return FetchOutcome::kWatchdog;
    }
  }
  if (ctx.params.expected_digest != 0 &&
      digest != ctx.params.expected_digest) {
    log::error() << name() << ": context " << target
                 << " configuration integrity check failed";
    ++stats_.digest_mismatches;
    ++stats_.fetch_errors;
    ledger_.append(fault::FaultEventKind::kDigestMismatch,
                   sim().now().picoseconds(), site_id_,
                   ctx.params.config_address, digest);
    return FetchOutcome::kDigestMismatch;
  }
  if (digest_out != nullptr) *digest_out = digest;
  return FetchOutcome::kOk;
}

void Drcf::set_expected_digest(usize ctx, u64 digest) {
  contexts_.at(ctx)->params.expected_digest = digest;
}

ContextStats Drcf::context_stats(usize ctx) const {
  const Context& c = *contexts_.at(ctx);
  ContextStats s = c.stats;
  if (slot_table_.lookup(ctx).has_value())
    s.active_time += sim().now() - c.residency_start;
  return s;
}

kern::Signal<u32>& Drcf::trace_active_context() {
  if (active_ctx_signal_ == nullptr) {
    active_ctx_signal_owner_ = std::make_unique<kern::Signal<u32>>(
        *this, "active_context", std::numeric_limits<u32>::max());
    active_ctx_signal_ = active_ctx_signal_owner_.get();
  }
  return *active_ctx_signal_;
}

void Drcf::reset_stats() {
  stats_ = DrcfStats{};
  ledger_.clear();
  const kern::Time now = sim().now();
  for (auto& c : contexts_) {
    c->stats = ContextStats{};
    if (slot_table_.lookup(static_cast<usize>(&c - contexts_.data()))
            .has_value())
      c->residency_start = now;
  }
}

double Drcf::total_energy_j(double clock_mhz) const {
  double active_j = 0.0;
  for (usize i = 0; i < contexts_.size(); ++i) {
    const auto s = context_stats(i);
    const double watts = static_cast<double>(contexts_[i]->params.gates) *
                         cfg_.technology.uw_per_gate_mhz * clock_mhz * 1e-6;
    active_j += watts * s.active_time.to_sec();
  }
  return active_j + stats_.reconfig_energy_j;
}

double Drcf::resident_power_mw(double clock_mhz) const {
  double uw = 0.0;
  for (u32 slot = 0; slot < slot_table_.slots(); ++slot) {
    const auto r = slot_table_.resident(slot);
    if (!r.has_value()) continue;
    uw += static_cast<double>(contexts_[*r]->params.gates) *
          cfg_.technology.uw_per_gate_mhz * clock_mhz;
  }
  return uw / 1000.0;
}

}  // namespace adriatic::drcf
