// Snapshottable hardware-task state — the unit of checkpoint/restore and
// cross-fabric migration (Wicaksana et al.'s context-switch method for
// heterogeneous reconfigurable systems). A TaskState captures everything a
// fabric needs to resume a task elsewhere: which context it is, the
// configuration digest the context must be programmed with, the
// register/scratch window image, and a progress cursor.
//
// Plain C++ (no kernel dependencies), like ContextCache, so tests can build
// and mutate snapshots outside a simulation. The word type matches
// bus::word (i32): a serialized snapshot travels over the bus verbatim.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace adriatic::drcf {

/// Why a TaskState restore (or a serialized-snapshot parse) was rejected.
/// Every rejection is loud — a typed error plus a kMigrateError ledger
/// entry — and leaves the destination context untouched.
enum class RestoreError : u8 {
  kNone = 0,
  kBadHeader = 1,         ///< Magic/size header invalid or missing.
  kDigestMismatch = 2,    ///< Snapshot's config digest != destination's.
  kTruncatedImage = 3,    ///< Image shorter than the declared window.
  kGeometryMismatch = 4,  ///< Destination slot window differs in size.
  kUnknownContext = 5,    ///< No such context on the destination fabric.
  kBusyContext = 6,       ///< Destination context has in-flight activity.
};

[[nodiscard]] const char* to_string(RestoreError error);

/// A checkpointed hardware task. Produced by Drcf::checkpoint_task() at a
/// context-switch boundary (the task is quiescent: no pinned calls, no
/// waiters); consumed by Drcf::restore_task() after an integrity check.
struct TaskState {
  /// Serialization magic ("zSC" + version): word 0 of to_words().
  static constexpr i32 kMagic = 0x7A5C0001;
  /// Header size of the serialized form, in words, ahead of the image.
  static constexpr u32 kHeaderWords = 9;

  usize context_id = 0;    ///< Context index on the source fabric.
  u64 config_digest = 0;   ///< Expected bitstream digest at checkpoint time.
  u32 window_words = 0;    ///< Size of the register/scratch window.
  u64 progress_cursor = 0; ///< Forwarded accesses completed at checkpoint.
  std::vector<i32> image;  ///< The captured window, window_words long.

  /// FNV-1a over the image words (same byte fold as config_digest), the
  /// end-to-end payload integrity check carried inside the serialized form.
  [[nodiscard]] u64 image_digest() const noexcept;

  /// Serializes to the bus-transfer wire format:
  ///   [0] magic  [1] context_id  [2..3] config_digest lo/hi
  ///   [4] window_words  [5..6] progress_cursor lo/hi
  ///   [7..8] image_digest lo/hi  [9..] image
  [[nodiscard]] std::vector<i32> to_words() const;

  /// Parses and verifies a serialized snapshot. Returns kNone and fills
  /// `out` on success; kBadHeader for a mangled header, kTruncatedImage
  /// when the payload is shorter than the declared window, kDigestMismatch
  /// when the carried image digest does not match the payload (e.g. bits
  /// flipped in transit).
  [[nodiscard]] static RestoreError parse(std::span<const i32> words,
                                          TaskState* out);
};

}  // namespace adriatic::drcf
