// Context descriptors for the DRCF — the paper's Sec. 5.3 designer-visible
// parameters: (1) the memory address where the context's configuration is
// allocated, (2) the size of the context, (3) reconfiguration delays beyond
// the memory transfers themselves.
#pragma once

#include "bus/interfaces.hpp"
#include "kernel/time.hpp"
#include "util/types.hpp"

namespace adriatic::drcf {

struct ContextParams {
  /// (1) Where in memory the configuration bitstream lives.
  bus::addr_t config_address = 0;
  /// (2) Context size in 32-bit words. 0 = derive from `gates` through the
  /// selected technology's bits-per-gate density.
  u64 size_words = 0;
  /// (3) Reconfiguration delay in addition to the memory transfers
  /// (configuration decompression, fabric settling, ...).
  kern::Time extra_delay = kern::Time::zero();
  /// ASIC-equivalent gate count of the functionality; drives derived context
  /// sizes and the power/area estimates (paper Sec. 5.5).
  u64 gates = 0;
  /// Expected config_digest() of the bitstream; checked against the words
  /// actually fetched on every load. Zero disables the integrity check.
  u64 expected_digest = 0;
};

/// Per-context instrumentation maintained by the DRCF's arb_and_instr
/// process (paper Sec. 5.3 step 5: active time and reconfiguring time).
struct ContextStats {
  u64 activations = 0;        ///< Times the context was loaded into a slot.
  u64 accesses = 0;           ///< Interface-method calls forwarded to it.
  u64 blocked_accesses = 0;   ///< Calls that had to wait for a switch.
  u64 config_words_fetched = 0;
  kern::Time active_time;     ///< Total residency time in the fabric.
  kern::Time reconfig_time;   ///< Total time spent loading this context.
  kern::Time blocked_time;    ///< Caller time lost waiting for switches.
};

}  // namespace adriatic::drcf
