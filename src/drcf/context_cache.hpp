// Multi-slot configuration cache: MorphoSys-style context planes that hold
// already-fetched configurations near the fabric. A context switch whose
// bitstream is cached skips the configuration-bus fetch entirely; misses
// still generate the real configuration traffic the paper insists on.
//
// Plain C++ (no kernel dependencies) so the prefetch test oracle can replay
// cache decisions outside the simulation.
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "drcf/task_state.hpp"
#include "util/types.hpp"

namespace adriatic::drcf {

class ContextCache {
 public:
  explicit ContextCache(u32 planes = 0) : planes_(planes) {}

  [[nodiscard]] bool enabled() const noexcept { return !planes_.empty(); }
  [[nodiscard]] u32 plane_count() const noexcept {
    return static_cast<u32>(planes_.size());
  }

  [[nodiscard]] bool contains(usize ctx) const {
    return find(ctx) != nullptr;
  }
  /// Digest the cached copy was fetched with (kConfigDigestSeed fold);
  /// zero when the context is not cached.
  [[nodiscard]] u64 digest(usize ctx) const {
    const Plane* p = find(ctx);
    return p != nullptr ? p->digest : 0;
  }
  /// True when the cached copy was staged by a prefetch that no demand has
  /// consumed yet.
  [[nodiscard]] bool was_prefetched(usize ctx) const {
    const Plane* p = find(ctx);
    return p != nullptr && p->prefetched;
  }
  void consume_prefetched(usize ctx) {
    if (Plane* p = find(ctx)) p->prefetched = false;
  }

  /// LRU bookkeeping on a cache hit.
  void touch(usize ctx) {
    if (Plane* p = find(ctx)) p->touched = ++seq_;
  }

  struct InsertResult {
    bool inserted = false;
    std::optional<usize> evicted;  ///< Context recycled to make room.
  };

  /// Caches `ctx`. Eviction is LRU over planes not holding a context in
  /// `pinned` (the fabric-resident set: their cached copy is the reload
  /// source of the active planes). Fails when every plane is pinned.
  InsertResult insert(usize ctx, u64 digest, bool prefetched,
                      std::span<const usize> pinned);

  /// Drops a cached copy (e.g. its digest no longer matches expectations).
  /// Any parked snapshot goes with it — a snapshot is only as trustworthy
  /// as the configuration it was captured under.
  void invalidate(usize ctx) {
    if (Plane* p = find(ctx)) {
      p->ctx.reset();
      p->snapshot.reset();
    }
  }

  // Snapshot slot: each plane can park one checkpointed TaskState next to
  // its cached configuration (the preemptive-checkpoint landing zone).
  // Parking requires the context to be cached; the snapshot is dropped
  // whenever its plane is recycled or invalidated.
  [[nodiscard]] bool park_snapshot(usize ctx, TaskState state) {
    Plane* p = find(ctx);
    if (p == nullptr) return false;
    p->snapshot = std::move(state);
    return true;
  }
  [[nodiscard]] bool has_snapshot(usize ctx) const {
    const Plane* p = find(ctx);
    return p != nullptr && p->snapshot.has_value();
  }
  [[nodiscard]] std::optional<TaskState> take_snapshot(usize ctx) {
    Plane* p = find(ctx);
    if (p == nullptr || !p->snapshot.has_value()) return std::nullopt;
    std::optional<TaskState> s = std::move(p->snapshot);
    p->snapshot.reset();
    return s;
  }

 private:
  struct Plane {
    std::optional<usize> ctx;
    u64 digest = 0;
    bool prefetched = false;
    u64 touched = 0;
    std::optional<TaskState> snapshot;
  };

  [[nodiscard]] const Plane* find(usize ctx) const {
    for (const Plane& p : planes_)
      if (p.ctx == ctx) return &p;
    return nullptr;
  }
  [[nodiscard]] Plane* find(usize ctx) {
    return const_cast<Plane*>(std::as_const(*this).find(ctx));
  }

  u64 seq_ = 0;
  std::vector<Plane> planes_;
};

}  // namespace adriatic::drcf
