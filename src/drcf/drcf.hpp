// The DRCF — Dynamically Reconfigurable Fabric component (paper Sec. 5.2/5.3).
//
// Several candidate modules ("contexts") are folded into one bus slave that
// implements the union of their interfaces. A context scheduler and
// instrumentation process (the paper's `arb_and_instr`) owns the fabric:
//
//   1. Every interface-method call is decoded to its target context.
//   2. Calls to the active (resident) context are forwarded directly.
//   3. Calls to a non-resident context trigger a context switch.
//   4. During the switch the call is suspended while arb_and_instr generates
//      real configuration reads from the context's memory region — so the
//      memory traffic of reconfiguration is visible to the whole system.
//   5. The scheduler tracks active time and reconfiguration time per context.
//
// Extensions beyond the paper's base model (its own listed future work):
// multi-slot partial reconfiguration with replacement policies, background
// prefetch (MorphoSys-style double context plane), and energy accounting.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bus/interfaces.hpp"
#include "drcf/context.hpp"
#include "drcf/context_cache.hpp"
#include "drcf/prefetch_policy.hpp"
#include "drcf/slot_table.hpp"
#include "drcf/task_state.hpp"
#include "drcf/technology.hpp"
#include "fault/interposer.hpp"
#include "kernel/event.hpp"
#include "kernel/module.hpp"
#include "kernel/port.hpp"
#include "kernel/signal.hpp"

namespace adriatic::drcf {

/// What the fabric does when a configuration fetch fails (bus error,
/// integrity-check mismatch, or watchdog expiry).
enum class RecoveryPolicy : u8 {
  /// Fail the affected transactions immediately (the historical behaviour;
  /// golden traces are recorded under this policy).
  kFailFast = 0,
  /// Re-issue the whole fetch up to `max_attempts` times, waiting an
  /// exponentially growing simulated-time backoff between attempts. Every
  /// retry generates real configuration bus traffic.
  kRetryBackoff = 1,
  /// Give up on the failing context and transparently degrade: all further
  /// calls to it are retargeted to `fallback_context` (graceful
  /// degradation, e.g. a smaller/slower implementation of the same
  /// interface).
  kFallbackContext = 2,
  /// Re-fetch the configuration when the integrity check fails (scrubbing a
  /// corrupted bitstream); bus errors still fail fast.
  kScrub = 3,
};

[[nodiscard]] const char* to_string(RecoveryPolicy policy);

struct RecoveryConfig {
  RecoveryPolicy policy = RecoveryPolicy::kFailFast;
  /// Total fetch attempts under kRetryBackoff (1 = no retries).
  u32 max_attempts = 3;
  /// Simulated-time wait before the first retry; doubles per attempt.
  kern::Time backoff = kern::Time::ns(100);
  /// Degradation target for kFallbackContext.
  std::optional<usize> fallback_context;
  /// Reconfiguration watchdog: abort a fetch whose duration exceeds this
  /// (checked at fetch-chunk granularity). Zero disables it.
  kern::Time watchdog = kern::Time::zero();
  /// Extra re-fetches allowed on digest mismatch under kScrub.
  u32 scrub_refetches = 1;
};

/// FNV-1a over the four bytes of one fetched configuration word — the
/// integrity check folded over a context's bitstream during fetch.
[[nodiscard]] constexpr u64 config_digest_step(u64 h, bus::word w) noexcept {
  const u32 v = static_cast<u32>(w);
  for (u32 shift = 0; shift < 32; shift += 8)
    h = (h ^ ((v >> shift) & 0xFFu)) * 1099511628211ULL;
  return h;
}

inline constexpr u64 kConfigDigestSeed = 14695981039346656037ULL;

[[nodiscard]] constexpr u64 config_digest(
    std::span<const bus::word> words) noexcept {
  u64 h = kConfigDigestSeed;
  for (const bus::word w : words) h = config_digest_step(h, w);
  return h;
}

struct DrcfConfig {
  ReconfigTechnology technology = varicore_like();
  /// Fabric slots that can hold contexts concurrently (1 = the paper's base
  /// single-context model; >1 models partial reconfiguration).
  u32 slots = 1;
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  /// Bus priority of configuration fetches.
  u32 load_priority = 0;
  /// Fetch chunk for configuration reads (words per burst request).
  u32 fetch_burst = 64;
  /// When false, context switches cost only a fixed analytical delay and
  /// generate NO bus traffic — the OCAPI-XL-style modeling the paper
  /// criticises ("the memory traffic associated to context switching is not
  /// modeled", Sec. 4 [8]). Kept as an ablation knob to quantify the
  /// fidelity the full model buys.
  bool model_config_traffic = true;
  /// Analytical switch delay used when model_config_traffic is false:
  /// size_words / assumed_words_per_second. Zero = instantaneous switches.
  double assumed_fetch_words_per_us = 100.0;
  /// Behaviour when a configuration fetch fails.
  RecoveryConfig recovery;
  /// Fault plan applied to configuration fetches only: a master-path
  /// interposer between the fabric and its mst_port binding. Empty = no
  /// injection (and no interposer is created).
  fault::FaultPlan fetch_faults;
  /// Context-thrash detector: if `thrash_switches` context switches complete
  /// within a sliding `thrash_window` of simulated time with NO forwarded
  /// call between consecutive switches (the fabric reconfigures without
  /// doing useful work), DrcfStats::thrash_alerts increments and a kThrash
  /// event lands in the fault ledger. Zero window (the default) disables it.
  kern::Time thrash_window;
  u32 thrash_switches = 4;
  /// Context-prefetch policy and configuration cache (paper Sec. 5.4 lifts:
  /// predictive loading + MorphoSys-style context planes). The default —
  /// kOnDemand, no cache — keeps the paper-faithful behaviour and
  /// byte-identical golden scheduler digests.
  PrefetchConfig prefetch;
  /// Preemptive checkpointing: when a quiescent context is evicted by the
  /// scheduler, its task state is snapshotted first and parked — in the
  /// context cache's snapshot slot when the cache holds the context, in a
  /// fabric-side slot otherwise — so a migration controller (or the next
  /// residency) can resume it instead of restarting. Off by default: no
  /// checkpoint, no kMigrate trace records, golden digests unchanged.
  bool preempt_checkpoint = false;
};

struct DrcfStats {
  u64 switches = 0;            ///< Context loads performed.
  u64 prefetches = 0;          ///< Background loads that were hints.
  u64 hits = 0;                ///< Calls served without a switch.
  u64 misses = 0;              ///< Calls that required a switch.
  u64 config_words_fetched = 0;
  u64 fetch_errors = 0;        ///< Configuration fetch attempts that failed.
  u64 fetch_retries = 0;       ///< Retry attempts under kRetryBackoff.
  u64 digest_mismatches = 0;   ///< Fetches failing the integrity check.
  u64 scrubs = 0;              ///< Re-fetches triggered by kScrub.
  u64 watchdog_aborts = 0;     ///< Fetches aborted by the watchdog.
  u64 fallback_forwards = 0;   ///< Calls degraded to the fallback context.
  u64 load_give_ups = 0;       ///< Loads that failed terminally.
  u64 thrash_alerts = 0;       ///< Context-thrash detector firings.
  u64 prefetch_hits = 0;       ///< Demand loads/calls covered by a prefetch.
  u64 prefetch_misses = 0;     ///< Demand misses no prefetch had staged.
  u64 prefetch_aborts = 0;     ///< Prefetch loads cancelled for a demand.
  u64 cache_hits = 0;          ///< Switches installed from the context cache.
  u64 cache_evictions = 0;     ///< Context-cache planes recycled.
  u64 config_words_skipped = 0;    ///< Fetch words avoided by cache hits.
  u64 config_words_prefetched = 0; ///< Words fetched by background fills
                                   ///  (and aborted partial prefetches).
  u64 checkpoints = 0;       ///< Task states snapshotted off this fabric.
  u64 restores = 0;          ///< Task states restored into this fabric.
  u64 preempt_parks = 0;     ///< Eviction-time checkpoints parked.
  u64 restore_rejects = 0;   ///< Restores rejected by the integrity checks.
  kern::Time hidden_latency;   ///< Fetch latency kept off the demand path.
  kern::Time reconfig_busy_time;  ///< Fabric time spent reconfiguring.
  double reconfig_energy_j = 0.0;
};

class Drcf : public kern::Module, public bus::BusSlaveIf {
 public:
  Drcf(kern::Object& parent, std::string name, DrcfConfig cfg = {});

  kern::In<bool> clk;  ///< Mirrors the paper's DRCF template shape.
  /// Master port used by arb_and_instr to fetch configurations.
  kern::Port<bus::BusMasterIf> mst_port;

  /// Registers a wrapped module as context; returns its context id.
  /// If `params.size_words == 0` it is derived from `params.gates` via the
  /// technology's configuration density.
  usize add_context(bus::BusSlaveIf& inner, ContextParams params);

  // BusSlaveIf: the union of all contexts' address ranges ------------------
  [[nodiscard]] bus::addr_t get_low_add() const override;
  [[nodiscard]] bus::addr_t get_high_add() const override;
  bool read(bus::addr_t add, bus::word* data) override;
  bool write(bus::addr_t add, bus::word* data) override;

  /// Non-blocking hint: load `ctx` into a slot in the background (models
  /// MorphoSys's "reload the other 16 contexts while executing").
  void prefetch(usize ctx);

  // Introspection ------------------------------------------------------------
  [[nodiscard]] usize context_count() const noexcept {
    return contexts_.size();
  }
  [[nodiscard]] std::optional<usize> resident_in_slot(u32 slot) const {
    return slot_table_.resident(slot);
  }
  [[nodiscard]] bool is_resident(usize ctx) const {
    return slot_table_.lookup(ctx).has_value();
  }
  /// Per-context instrumentation; closes open residency periods at now().
  [[nodiscard]] ContextStats context_stats(usize ctx) const;
  [[nodiscard]] const ContextParams& context_params(usize ctx) const {
    return contexts_.at(ctx)->params;
  }
  [[nodiscard]] const DrcfStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const DrcfConfig& config() const noexcept { return cfg_; }
  /// Notified (delta) after every completed context load.
  [[nodiscard]] kern::Event& context_loaded_event() noexcept {
    return any_loaded_event_;
  }

  /// Active power of the currently resident contexts at `clock_mhz`, per
  /// the technology's uW/gate/MHz model.
  [[nodiscard]] double resident_power_mw(double clock_mhz) const;

  /// Total energy estimate over the simulation so far: reconfiguration
  /// energy (tracked exactly) plus active energy of resident contexts
  /// integrated over their residency time at `clock_mhz`.
  [[nodiscard]] double total_energy_j(double clock_mhz) const;

  /// Exposes the active context index as a traceable signal (VCD-friendly);
  /// value is the last installed context id. Call before the first switch.
  [[nodiscard]] kern::Signal<u32>& trace_active_context();

  /// Sets the expected configuration digest for a context; fetched words
  /// are folded with config_digest_step() and compared after every load.
  /// Zero (the default) disables the integrity check for that context.
  void set_expected_digest(usize ctx, u64 digest);

  /// Structured record of every fault injected into and observed by this
  /// fabric's configuration-fetch path (shared with the fetch interposer).
  [[nodiscard]] const fault::FaultLedger& fault_ledger() const noexcept {
    return ledger_;
  }

  // Task checkpoint/restore (drcf/task_state.hpp) ---------------------------
  /// Snapshots `ctx`'s task state at a context-switch boundary. The context
  /// must be quiescent — no pinned (in-flight) calls, no waiters, no load in
  /// flight — or the checkpoint is refused (nullopt). The capture itself is
  /// a zero-sim-time side-door read of the context's register window
  /// (modeling a dedicated scan path); moving the state somewhere costs real
  /// bus traffic, charged by the MigrationController. Emits one kMigrate
  /// scheduler-trace record.
  [[nodiscard]] std::optional<TaskState> checkpoint_task(usize ctx);

  /// Restores a checkpointed task into `ctx`. Every integrity check runs
  /// BEFORE the first register write, so a rejected restore never corrupts a
  /// running context: unknown context, truncated image, window-geometry
  /// mismatch, busy destination, and config-digest mismatch (when both the
  /// snapshot and the destination carry a nonzero expected digest) each
  /// return their typed error and append a kMigrateError ledger entry.
  /// Emits one kMigrate scheduler-trace record on success.
  RestoreError restore_task(usize ctx, const TaskState& state);

  /// Parked preemption snapshots: written by the scheduler when
  /// DrcfConfig::preempt_checkpoint is on and it evicts a quiescent context.
  [[nodiscard]] bool has_parked_snapshot(usize ctx) const;
  /// Removes and returns the parked snapshot for `ctx`, if any.
  [[nodiscard]] std::optional<TaskState> take_parked_snapshot(usize ctx);

  /// Clears aggregate and per-context statistics (steady-state measurement
  /// after warm-up). Residency baselines restart at the current time.
  void reset_stats();

 private:
  struct Context {
    bus::BusSlaveIf* inner;
    ContextParams params;
    ContextStats stats;
    std::unique_ptr<kern::Event> loaded_event;
    kern::Time residency_start;  ///< Valid while resident.
    bool load_pending = false;
    /// Set when the most recent load attempt's configuration fetch failed;
    /// suspended callers observe it and fail their calls.
    bool load_failed = false;
    /// Forwarded calls currently in flight — the fabric cannot be
    /// reconfigured away underneath them.
    u32 pins = 0;
    /// Callers suspended waiting for this context to load; they must get a
    /// chance to forward before the context may be evicted again.
    u32 waiters = 0;
    /// Recovery exhausted under kFallbackContext: the context is never
    /// loaded again and calls to it degrade to the fallback context.
    bool gave_up = false;
    /// The queued/in-flight load was issued by the prefetcher, not by a
    /// suspended caller; cleared ("promoted") when a demand joins it.
    bool pending_is_prefetch = false;
    /// The load only fills the configuration cache — no slot is chosen, no
    /// victim drained, the fabric stays usable throughout.
    bool pending_fill_only = false;
    /// The resident copy was installed by a prefetch no call consumed yet;
    /// the first hit credits the fetch latency as hidden.
    bool loaded_by_prefetch = false;
    bool fetch_in_progress = false;
    kern::Time fetch_started;        ///< Valid while fetch_in_progress.
    kern::Time last_fetch_duration;  ///< Duration of the last real fetch.
    u64 trace_id = 0;  ///< sched_name_hash of the loaded event's name.
  };

  /// Outcome of one complete configuration-fetch attempt.
  enum class FetchOutcome : u8 {
    kOk = 0,
    kBusError = 1,
    kDigestMismatch = 2,
    kWatchdog = 3,
    /// A hybrid prefetch abandoned mid-fetch because a demand load arrived.
    kAbortedPrefetch = 4,
  };

  /// Result of a complete fetch including the recovery-policy retry loop.
  struct FetchResult {
    bool ok = false;
    bool aborted = false;  ///< kAbortedPrefetch: not a failure, not a success.
    u64 digest = 0;        ///< Digest of the fetched words when ok.
  };

  void arb_and_instr();  ///< The scheduler/instrumentation process.
  /// Thrash detection at each completed context switch: a switch with no
  /// forwarded call since the previous one joins the sliding window.
  void note_switch();
  void request_load(usize ctx);
  /// Queues a prefetcher-initiated load. With `fill_only` the load stages
  /// the configuration into the cache without touching fabric slots.
  void issue_prefetch(usize ctx, bool fill_only);
  void request_load_impl(usize ctx, bool is_prefetch, bool fill_only);
  /// Hybrid retargeting: cancels still-queued (unstarted) prefetch loads so
  /// a demand load for `demanded` reaches the bus sooner.
  void drop_queued_prefetches(usize demanded);
  /// Prefetch-attribution bookkeeping when a call first misses on `target`.
  void note_demand_miss(usize target, Context& ctx);
  /// Consults the predictor after a demand-driven switch to `current` and
  /// queues the staging load if the prediction is actionable.
  void auto_prefetch_after(usize current);
  /// Executes a fill-only prefetch: fetches `target`'s configuration into
  /// the cache while the fabric keeps running.
  void fill_cache(usize target, std::vector<bus::word>& buf);
  /// True when the cache holds a copy of `target` that passes the context's
  /// integrity expectation.
  [[nodiscard]] bool cache_covers(usize target) const;
  [[nodiscard]] std::vector<usize> resident_contexts() const;
  /// True when a demand load for a context other than `current` is queued
  /// (the hybrid policy's abort trigger).
  [[nodiscard]] bool hybrid_demand_waiting(usize current) const;
  /// Emits a kPrefetch scheduler-trace record for `target`'s load.
  void emit_sched_prefetch(usize target);
  /// Emits a kMigrate scheduler-trace record for `target`'s checkpoint or
  /// restore edge.
  void emit_sched_migrate(usize target);
  /// Eviction-time preemptive checkpoint: snapshots `victim` (already
  /// drained by the caller) and parks the state in the context cache's
  /// snapshot slot, or fabric-side when the cache does not hold it.
  void park_preempt_snapshot(usize victim);
  bool forward(bus::addr_t add, bus::word* data, bool is_read);
  [[nodiscard]] std::optional<usize> decode(bus::addr_t add) const;
  void close_residency(Context& c, kern::Time at);
  /// One complete fetch attempt for `target`'s configuration: chunked burst
  /// reads, watchdog checks, digest fold + integrity check. Updates stats
  /// and the ledger for the failure it reports.
  FetchOutcome fetch_context(Context& ctx, usize target,
                             std::vector<bus::word>& buf, u64* digest_out);
  /// The full fetch with the configured recovery policy applied: retries
  /// under kRetryBackoff, scrubbing re-fetches, recovered-event ledgering.
  FetchResult fetch_with_recovery(Context& ctx, usize target,
                                  std::vector<bus::word>& buf);
  /// The master interface fetches go through: the fault interposer when a
  /// fetch_faults plan is configured, the bare mst_port binding otherwise.
  [[nodiscard]] bus::BusMasterIf& fetch_master();
  /// Rewrites (target, add) to the fallback context under kFallbackContext;
  /// false when no valid fallback applies (call must fail instead).
  bool retarget_to_fallback(usize& target, bus::addr_t& add);

  DrcfConfig cfg_;
  std::vector<std::unique_ptr<Context>> contexts_;
  SlotTable slot_table_;
  PrefetchPredictor predictor_;
  ContextCache config_cache_;
  /// Target of the most recent demand-driven switch (the predictor's
  /// Markov-edge source).
  std::optional<usize> last_demand_target_;
  std::vector<usize> load_queue_;
  kern::Event load_request_event_;
  kern::Event any_loaded_event_;
  kern::Event fabric_idle_event_;  ///< Single-slot: fabric usable again.
  kern::Event drain_event_;        ///< A pin or waiter count decreased.
  bool reconfiguring_ = false;
  DrcfStats stats_;
  u64 forward_count_ = 0;  ///< Calls forwarded to any resident context.
  u64 forwards_at_last_switch_ = 0;
  /// Completion times of recent fruitless switches (thrash window).
  std::deque<kern::Time> fruitless_switches_;
  /// Preemption snapshots for contexts the cache does not hold (and for
  /// cache-less fabrics); cache-held contexts park in their plane instead.
  std::map<usize, TaskState> parked_snapshots_;
  fault::FaultLedger ledger_;
  std::unique_ptr<fault::BusFaultInterposer> fetch_interposer_;
  u64 site_id_ = 0;  ///< sched_name_hash(name()), the ledger site id.
  std::unique_ptr<kern::Signal<u32>> active_ctx_signal_owner_;
  kern::Signal<u32>* active_ctx_signal_ = nullptr;
};

}  // namespace adriatic::drcf
