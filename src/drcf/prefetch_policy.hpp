// Context-prefetch policies for the DRCF scheduler.
//
// The paper's Sec. 5.4 lists "the DRCF cannot prefetch configurations" as a
// limitation of the modeled context scheduler; this layer lifts it. A
// PrefetchPredictor picks the context the scheduler should stage next, and
// the scheduler overlaps that configuration fetch with useful fabric work
// (Resano-style hybrid prefetch scheduling; see PAPERS.md).
//
// The predictor is deliberately kernel-independent plain C++: the test
// oracle replays the same switch sequence through a second instance and the
// two must agree decision-for-decision.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace adriatic::drcf {

enum class PrefetchPolicy : u8 {
  /// Paper-faithful base model: contexts load only when a call demands
  /// them. Golden scheduler digests are recorded under this policy.
  kOnDemand = 0,
  /// Designer-annotated successor table: after switching to context i,
  /// stage static_next[i].
  kStaticNext = 1,
  /// First-order Markov predictor over observed context-switch pairs:
  /// stage the most frequent successor of the current context.
  kHistory = 2,
  /// Resano-style hybrid: the static annotation where one exists, history
  /// otherwise; prefetches only issue on an idle configuration path and
  /// are aborted/retargeted when a demand load arrives mid-fetch.
  kHybrid = 3,
};

[[nodiscard]] const char* to_string(PrefetchPolicy policy);

struct PrefetchConfig {
  PrefetchPolicy policy = PrefetchPolicy::kOnDemand;
  /// Successor table for kStaticNext/kHybrid. Entry i names the context to
  /// stage after switching to context i; an entry equal to i, or out of
  /// range, or past the end of the table means "no annotation".
  std::vector<usize> static_next;
  /// Configuration-cache planes (MorphoSys-style context planes). Zero
  /// disables the cache: prefetches then stage into free fabric slots only.
  u32 cache_slots = 0;

  [[nodiscard]] bool operator==(const PrefetchConfig&) const = default;
};

/// Decides which context to stage next. Pure bookkeeping — no simulation
/// dependencies — so an oracle can replay it outside the kernel.
class PrefetchPredictor {
 public:
  PrefetchPredictor() = default;
  PrefetchPredictor(PrefetchPolicy policy, std::vector<usize> static_next)
      : policy_(policy), static_next_(std::move(static_next)) {}

  /// Records a completed demand-driven context switch `from` -> `to`.
  void observe_switch(usize from, usize to);

  /// The context to stage after switching to `current`, if the policy has
  /// a prediction. Never returns `current` itself.
  [[nodiscard]] std::optional<usize> predict(usize current) const;

  [[nodiscard]] PrefetchPolicy policy() const noexcept { return policy_; }

  void reset() { edges_.clear(); }

 private:
  [[nodiscard]] std::optional<usize> static_successor(usize current) const;
  [[nodiscard]] std::optional<usize> history_successor(usize current) const;

  PrefetchPolicy policy_ = PrefetchPolicy::kOnDemand;
  std::vector<usize> static_next_;
  /// Markov edge counts: edges_[from][to] = observed transitions. Ordered
  /// maps give a deterministic lowest-index tie-break on equal counts.
  std::map<usize, std::map<usize, u64>> edges_;
};

}  // namespace adriatic::drcf
