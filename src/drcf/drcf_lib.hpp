// Umbrella header for the DRCF core library.
#pragma once

#include "drcf/context.hpp"
#include "drcf/context_cache.hpp"
#include "drcf/drcf.hpp"
#include "drcf/power_trace.hpp"
#include "drcf/prefetch_policy.hpp"
#include "drcf/slot_table.hpp"
#include "drcf/technology.hpp"
