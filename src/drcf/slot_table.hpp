// Slot bookkeeping for the DRCF: which contexts are resident in which
// fabric slot, and which resident context to evict on a miss. Single-slot
// (the paper's base model) is the slots==1 case; multi-slot models partial
// reconfiguration (listed by the paper as a future parameter, Sec. 5.3).
#pragma once

#include <optional>
#include <vector>

#include "util/types.hpp"

namespace adriatic::drcf {

enum class ReplacementPolicy : u8 {
  kLru,   ///< Evict the least recently used resident context.
  kFifo,  ///< Evict the oldest-installed resident context.
  kMru,   ///< Evict the most recently used (anti-streaming; ablation).
};

class SlotTable {
 public:
  SlotTable(u32 slots, ReplacementPolicy policy);

  /// Slot holding `ctx`, if resident.
  [[nodiscard]] std::optional<u32> lookup(usize ctx) const;

  /// Picks the slot to (re)use for a miss on `ctx`: a free slot if any,
  /// otherwise the policy's victim. Does not install.
  struct Victim {
    u32 slot;
    std::optional<usize> evicted;  ///< Context displaced, if the slot was used.
  };
  [[nodiscard]] Victim choose(usize ctx) const;

  void install(u32 slot, usize ctx);
  void evict(u32 slot);
  /// Records an access for recency-based policies.
  void touch(u32 slot);

  [[nodiscard]] u32 slots() const noexcept {
    return static_cast<u32>(entries_.size());
  }
  [[nodiscard]] std::optional<usize> resident(u32 slot) const {
    return entries_[slot].ctx;
  }

 private:
  struct Entry {
    std::optional<usize> ctx;
    u64 installed_seq = 0;
    u64 touched_seq = 0;
  };

  ReplacementPolicy policy_;
  u64 seq_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace adriatic::drcf
