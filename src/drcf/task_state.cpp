#include "drcf/task_state.hpp"

namespace adriatic::drcf {

const char* to_string(RestoreError error) {
  switch (error) {
    case RestoreError::kNone:
      return "none";
    case RestoreError::kBadHeader:
      return "bad_header";
    case RestoreError::kDigestMismatch:
      return "digest_mismatch";
    case RestoreError::kTruncatedImage:
      return "truncated_image";
    case RestoreError::kGeometryMismatch:
      return "geometry_mismatch";
    case RestoreError::kUnknownContext:
      return "unknown_context";
    case RestoreError::kBusyContext:
      return "busy_context";
  }
  return "?";
}

namespace {

// Same byte-serial FNV-1a fold as drcf::config_digest_step (duplicated to
// keep this translation unit kernel-free).
constexpr u64 fnv_step(u64 h, i32 w) noexcept {
  const u32 v = static_cast<u32>(w);
  for (u32 shift = 0; shift < 32; shift += 8)
    h = (h ^ ((v >> shift) & 0xFFu)) * 1099511628211ULL;
  return h;
}

constexpr u64 kFnvSeed = 14695981039346656037ULL;

constexpr i32 lo_word(u64 v) noexcept {
  return static_cast<i32>(static_cast<u32>(v & 0xFFFFFFFFu));
}
constexpr i32 hi_word(u64 v) noexcept {
  return static_cast<i32>(static_cast<u32>(v >> 32));
}
constexpr u64 join_words(i32 lo, i32 hi) noexcept {
  return static_cast<u64>(static_cast<u32>(lo)) |
         (static_cast<u64>(static_cast<u32>(hi)) << 32);
}

}  // namespace

u64 TaskState::image_digest() const noexcept {
  u64 h = kFnvSeed;
  for (const i32 w : image) h = fnv_step(h, w);
  return h;
}

std::vector<i32> TaskState::to_words() const {
  std::vector<i32> words;
  words.reserve(kHeaderWords + image.size());
  words.push_back(kMagic);
  words.push_back(static_cast<i32>(static_cast<u32>(context_id)));
  words.push_back(lo_word(config_digest));
  words.push_back(hi_word(config_digest));
  words.push_back(static_cast<i32>(window_words));
  words.push_back(lo_word(progress_cursor));
  words.push_back(hi_word(progress_cursor));
  const u64 idig = image_digest();
  words.push_back(lo_word(idig));
  words.push_back(hi_word(idig));
  words.insert(words.end(), image.begin(), image.end());
  return words;
}

RestoreError TaskState::parse(std::span<const i32> words, TaskState* out) {
  if (words.size() < kHeaderWords || words[0] != kMagic)
    return RestoreError::kBadHeader;
  TaskState s;
  s.context_id = static_cast<usize>(static_cast<u32>(words[1]));
  s.config_digest = join_words(words[2], words[3]);
  s.window_words = static_cast<u32>(words[4]);
  s.progress_cursor = join_words(words[5], words[6]);
  const u64 carried_digest = join_words(words[7], words[8]);
  if (words.size() - kHeaderWords < s.window_words)
    return RestoreError::kTruncatedImage;
  s.image.assign(words.begin() + kHeaderWords,
                 words.begin() + kHeaderWords + s.window_words);
  if (s.image_digest() != carried_digest) return RestoreError::kDigestMismatch;
  if (out != nullptr) *out = std::move(s);
  return RestoreError::kNone;
}

}  // namespace adriatic::drcf
