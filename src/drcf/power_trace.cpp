#include "drcf/power_trace.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "kernel/simulation.hpp"

namespace adriatic::drcf {

PowerTracer::PowerTracer(kern::Object& parent, std::string name, Drcf& fabric,
                         double clock_mhz, kern::Time interval,
                         kern::Time window)
    : Module(parent, std::move(name)),
      fabric_(&fabric),
      clock_mhz_(clock_mhz),
      interval_(interval),
      window_(window) {
  if (interval_.is_zero())
    throw std::invalid_argument(this->name() + ": zero sampling interval");
  // Strict timing even in loose mode: the sampler reads sim().now() every
  // interval, so decoupling would batch its samples at quantum boundaries.
  auto& sampler = spawn_thread("sampler", [this] {
    const kern::Time start = sim().now();
    while (!stopped_ &&
           (window_.is_zero() || sim().now() - start < window_)) {
      sample();
      kern::wait(interval_);
    }
  });
  sampler.set_daemon();
  sampler.set_timing_strict();
}

void PowerTracer::sample() {
  Sample s;
  s.time = sim().now();
  s.active_mw = fabric_->resident_power_mw(clock_mhz_);
  // Reconfiguration power: attribute the technology's reconfiguration wattage
  // to intervals where reconfig busy time advanced since the last sample.
  const kern::Time busy = fabric_->stats().reconfig_busy_time;
  const bool reconfigured_recently = busy > last_reconfig_busy_;
  last_reconfig_busy_ = busy;
  s.reconfig_mw = reconfigured_recently
                      ? fabric_->config().technology.reconfig_power_w * 1e3
                      : 0.0;
  samples_.push_back(s);
}

double PowerTracer::peak_mw() const {
  double peak = 0.0;
  for (const auto& s : samples_) peak = std::max(peak, s.total_mw());
  return peak;
}

double PowerTracer::mean_mw() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples_) sum += s.total_mw();
  return sum / static_cast<double>(samples_.size());
}

double PowerTracer::energy_mj() const {
  // Fixed-interval samples: energy = mean power * window.
  if (samples_.size() < 2) return 0.0;
  const double window_s =
      (samples_.back().time - samples_.front().time).to_sec();
  return mean_mw() * window_s;  // mW * s = mJ
}

void PowerTracer::write_csv(std::ostream& os) const {
  os << "time_us,active_mw,reconfig_mw\n";
  for (const auto& s : samples_)
    os << s.time.to_us() << ',' << s.active_mw << ',' << s.reconfig_mw
       << '\n';
}

}  // namespace adriatic::drcf
