#include "drcf/technology.hpp"

namespace adriatic::drcf {

ReconfigTechnology virtex2pro_like() {
  ReconfigTechnology t;
  t.name = "virtex2pro";
  t.granularity = Granularity::kFine;
  // SRAM LUT fabric: a logic gate costs tens of configuration bits once
  // LUT masks, routing and CLB control are counted.
  t.bits_per_gate = 48.0;
  t.uw_per_gate_mhz = 0.12;
  t.reconfig_power_w = 0.15;
  t.per_switch_overhead = kern::Time::us(2);  // ICAP setup, frame addressing
  t.area_factor = 12.0;
  t.clock_derating = 0.35;
  t.context_planes = 1;
  return t;
}

ReconfigTechnology varicore_like() {
  ReconfigTechnology t;
  t.name = "varicore";
  t.granularity = Granularity::kFine;
  t.bits_per_gate = 24.0;  // embedded PEG blocks, denser config encoding
  t.uw_per_gate_mhz = 0.075;  // the paper's quoted figure
  t.reconfig_power_w = 0.08;
  t.per_switch_overhead = kern::Time::ns(500);
  t.area_factor = 8.0;
  t.clock_derating = 0.5;  // up to 250 MHz in 0.18u per the paper
  t.context_planes = 1;
  return t;
}

ReconfigTechnology morphosys_like() {
  ReconfigTechnology t;
  t.name = "morphosys";
  t.granularity = Granularity::kCoarse;
  // Word-level RCs: one 32-bit context word steers a whole 16-bit datapath
  // cell (~600 gate-equivalents) -> far fewer bits per gate.
  t.bits_per_gate = 0.6;
  t.uw_per_gate_mhz = 0.06;
  t.reconfig_power_w = 0.03;
  t.per_switch_overhead = kern::Time::ns(10);  // context-plane select
  t.area_factor = 3.0;
  t.clock_derating = 0.8;
  t.context_planes = 2;  // 16 contexts execute while 16 reload
  return t;
}

}  // namespace adriatic::drcf
