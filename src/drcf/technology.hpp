// Reconfigurable-technology parameter library (paper Secs. 3 and 5.5): the
// three classes the paper surveys, with datasheet-derived defaults, so the
// same system model can be evaluated against fine-grained FPGAs, embedded
// FPGA cores, and coarse-grained arrays by swapping one struct.
#pragma once

#include <string>

#include "kernel/time.hpp"
#include "util/types.hpp"

namespace adriatic::drcf {

enum class Granularity : u8 { kFine, kMedium, kCoarse };

struct ReconfigTechnology {
  std::string name;
  Granularity granularity = Granularity::kFine;
  /// Configuration bits needed per ASIC-equivalent gate. Fine-grained SRAM
  /// FPGAs spend far more configuration state per logic function than
  /// coarse-grained word-level arrays.
  double bits_per_gate = 20.0;
  /// Active power of mapped logic, in microwatts per gate per MHz (the
  /// paper quotes VariCore at 0.075 uW/gate/MHz).
  double uw_per_gate_mhz = 0.075;
  /// Power drawn by the configuration circuitry while reconfiguring (W).
  double reconfig_power_w = 0.05;
  /// Fixed controller overhead added to every context switch.
  kern::Time per_switch_overhead = kern::Time::ns(100);
  /// Area inflation of reconfigurable fabric vs dedicated ASIC gates —
  /// Fig. 2's "factor of 100-1000" efficiency gap shows up here and in the
  /// clock derating below.
  double area_factor = 8.0;
  /// Achievable clock relative to an ASIC implementation (<= 1.0).
  double clock_derating = 0.4;
  /// Context planes that can hold configurations simultaneously with
  /// single-cycle switching between them (MorphoSys: 2 planes of 16 words;
  /// single-context FPGAs: 1).
  u32 context_planes = 1;

  /// Words of configuration data for a block of `gates` gates.
  [[nodiscard]] u64 context_words(u64 gates) const {
    const double bits = static_cast<double>(gates) * bits_per_gate;
    return static_cast<u64>((bits + 31.0) / 32.0);
  }
};

/// Xilinx Virtex-II-Pro-class system-level FPGA (paper Sec. 3a): fine grain,
/// 1-bit granularity, big SRAM bitstreams, full-device reconfiguration.
[[nodiscard]] ReconfigTechnology virtex2pro_like();

/// Actel VariCore-class embedded FPGA core (paper Sec. 3b): fine/medium
/// grain, modest size (2.5k-40k ASIC gates), 0.075 uW/gate/MHz.
[[nodiscard]] ReconfigTechnology varicore_like();

/// MorphoSys-class coarse-grained array (paper Sec. 3c): word-level RCs,
/// tiny contexts, double context plane enabling background reload.
[[nodiscard]] ReconfigTechnology morphosys_like();

}  // namespace adriatic::drcf
