#include "drcf/context_cache.hpp"

#include <algorithm>

namespace adriatic::drcf {

ContextCache::InsertResult ContextCache::insert(usize ctx, u64 digest,
                                                bool prefetched,
                                                std::span<const usize> pinned) {
  InsertResult r;
  if (planes_.empty()) return r;
  if (Plane* p = find(ctx)) {  // refresh in place
    p->digest = digest;
    p->prefetched = prefetched;
    p->touched = ++seq_;
    r.inserted = true;
    return r;
  }
  const auto is_pinned = [&](usize c) {
    return std::find(pinned.begin(), pinned.end(), c) != pinned.end();
  };
  Plane* slot = nullptr;
  for (Plane& p : planes_) {  // a free plane always wins
    if (!p.ctx.has_value()) {
      slot = &p;
      break;
    }
  }
  if (slot == nullptr) {  // LRU over unpinned planes
    for (Plane& p : planes_) {
      if (is_pinned(*p.ctx)) continue;
      if (slot == nullptr || p.touched < slot->touched) slot = &p;
    }
    if (slot == nullptr) return r;  // every plane pinned: give up
    r.evicted = slot->ctx;
  }
  slot->ctx = ctx;
  slot->digest = digest;
  slot->prefetched = prefetched;
  slot->touched = ++seq_;
  slot->snapshot.reset();  // recycled plane: the old task's parked state dies
  r.inserted = true;
  return r;
}

}  // namespace adriatic::drcf
