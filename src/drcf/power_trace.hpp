// Power-profile tracer for a DRCF: samples the fabric's power draw at a
// fixed interval — active (technology uW/gate/MHz over the resident
// contexts) plus reconfiguration power while a switch is in flight. This is
// the observable form of the power extension the paper lists as a future
// modeling parameter (Sec. 5.3).
#pragma once

#include <iosfwd>
#include <vector>

#include "drcf/drcf.hpp"
#include "kernel/module.hpp"

namespace adriatic::drcf {

class PowerTracer : public kern::Module {
 public:
  struct Sample {
    kern::Time time;
    double active_mw;
    double reconfig_mw;
    [[nodiscard]] double total_mw() const { return active_mw + reconfig_mw; }
  };

  /// Samples every `interval` for `window` of simulated time (zero window =
  /// until stop() is called). NOTE: while sampling, the tracer keeps timed
  /// events pending, so an unbounded Simulation::run() will not return
  /// until the window elapses or stop() is called.
  PowerTracer(kern::Object& parent, std::string name, Drcf& fabric,
              double clock_mhz, kern::Time interval,
              kern::Time window = kern::Time::zero());

  /// Stops sampling after the current interval.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] double peak_mw() const;
  [[nodiscard]] double mean_mw() const;
  /// Energy integral over the sampled window (trapezoid on fixed steps).
  [[nodiscard]] double energy_mj() const;

  /// CSV dump: time_us,active_mw,reconfig_mw.
  void write_csv(std::ostream& os) const;

 private:
  void sample();

  Drcf* fabric_;
  double clock_mhz_;
  kern::Time interval_;
  kern::Time window_;
  bool stopped_ = false;
  kern::Time last_reconfig_busy_;
  std::vector<Sample> samples_;
};

}  // namespace adriatic::drcf
