#include "drcf/slot_table.hpp"

#include <stdexcept>

namespace adriatic::drcf {

SlotTable::SlotTable(u32 slots, ReplacementPolicy policy) : policy_(policy) {
  if (slots == 0) throw std::invalid_argument("SlotTable: zero slots");
  entries_.resize(slots);
}

std::optional<u32> SlotTable::lookup(usize ctx) const {
  for (u32 s = 0; s < slots(); ++s)
    if (entries_[s].ctx == ctx) return s;
  return std::nullopt;
}

SlotTable::Victim SlotTable::choose(usize /*ctx*/) const {
  // Prefer a free slot.
  for (u32 s = 0; s < slots(); ++s)
    if (!entries_[s].ctx.has_value()) return {s, std::nullopt};

  u32 victim = 0;
  for (u32 s = 1; s < slots(); ++s) {
    const Entry& a = entries_[s];
    const Entry& v = entries_[victim];
    switch (policy_) {
      case ReplacementPolicy::kLru:
        if (a.touched_seq < v.touched_seq) victim = s;
        break;
      case ReplacementPolicy::kFifo:
        if (a.installed_seq < v.installed_seq) victim = s;
        break;
      case ReplacementPolicy::kMru:
        if (a.touched_seq > v.touched_seq) victim = s;
        break;
    }
  }
  return {victim, entries_[victim].ctx};
}

void SlotTable::install(u32 slot, usize ctx) {
  entries_.at(slot).ctx = ctx;
  entries_[slot].installed_seq = ++seq_;
  entries_[slot].touched_seq = seq_;
}

void SlotTable::evict(u32 slot) { entries_.at(slot).ctx.reset(); }

void SlotTable::touch(u32 slot) { entries_.at(slot).touched_seq = ++seq_; }

}  // namespace adriatic::drcf
