#include "kernel/diagnostics.hpp"

#include <sstream>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace adriatic::kern {

const char* to_string(DeadlockReport::Kind kind) {
  switch (kind) {
    case DeadlockReport::Kind::kDeadlock:
      return "deadlock";
    case DeadlockReport::Kind::kLivelock:
      return "livelock";
  }
  return "?";
}

std::string DeadlockReport::to_string() const {
  std::ostringstream out;
  out << kern::to_string(kind) << " at " << at.str() << " (delta "
      << delta_count << ", " << activations << " activations): "
      << waiters.size() << " blocked process(es)";
  for (const BlockedWaiter& w : waiters) {
    out << "\n  " << w.process << " (" << (w.is_thread ? "thread" : "method")
        << ", blocked " << w.wait_duration.str() << ", since "
        << w.blocked_since.str() << ") waiting on:";
    if (w.awaited.empty()) out << " <nothing>";
    for (const std::string& e : w.awaited) out << ' ' << e;
  }
  return out.str();
}

void DeadlockReport::to_json(JsonWriter& w) const {
  w.begin_object();
  w.field("kind", kern::to_string(kind));
  w.field("at_ps", at.picoseconds());
  w.field("delta_count", delta_count);
  w.field("activations", activations);
  w.key("waiters").begin_array();
  for (const BlockedWaiter& bw : waiters) {
    w.begin_object();
    w.field("process", bw.process);
    w.field("process_id", strfmt("%016llx",
                                 static_cast<unsigned long long>(bw.process_id)));
    w.field("thread", bw.is_thread);
    w.field("blocked_since_ps", bw.blocked_since.picoseconds());
    w.field("wait_duration_ps", bw.wait_duration.picoseconds());
    w.key("awaited").begin_array();
    for (const std::string& e : bw.awaited) w.value(e);
    w.end();
    w.key("awaited_ids").begin_array();
    for (u64 id : bw.awaited_ids)
      w.value(strfmt("%016llx", static_cast<unsigned long long>(id)));
    w.end();
    w.end();
  }
  w.end();
  w.end();
}

}  // namespace adriatic::kern
