// Structured hang diagnostics. When a simulation goes quiescent while
// processes remain blocked on dynamic waits (deadlock), or simulated time
// keeps advancing without any non-daemon process dispatching (livelock,
// opt-in via Simulation::set_max_quiet_time), the kernel assembles a
// DeadlockReport naming every blocked process and the events it awaits —
// ids are the same FNV-1a name hashes the scheduler trace uses, so reports
// join directly against conformance traces.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kernel/time.hpp"
#include "util/types.hpp"

namespace adriatic {
class JsonWriter;
}

namespace adriatic::kern {

/// One blocked process in a DeadlockReport.
struct BlockedWaiter {
  std::string process;  ///< Full hierarchical name.
  u64 process_id = 0;   ///< sched_name_hash(process); joins with sched traces.
  bool is_thread = false;
  Time blocked_since;  ///< Sim time at which the current wait began.
  Time wait_duration;  ///< report.at - blocked_since.
  std::vector<std::string> awaited;  ///< Names of the awaited events.
  std::vector<u64> awaited_ids;      ///< sched_name_hash of each awaited name.
};

/// Assembled by Simulation::run() when a hang is detected. Deadlocks are
/// reported at quiescence without changing run()'s return value
/// (kNoActivity, as before); livelocks end the run with StopReason::kStalled.
struct DeadlockReport {
  enum class Kind : u8 {
    kDeadlock,  ///< Quiescent with blocked waiters: nothing can wake them.
    kLivelock,  ///< Time advanced max_quiet_time with no non-daemon dispatch.
  };

  Kind kind = Kind::kDeadlock;
  Time at;             ///< Sim time of detection.
  u64 delta_count = 0;
  u64 activations = 0;
  std::vector<BlockedWaiter> waiters;

  [[nodiscard]] std::string to_string() const;
  /// Writes the report as a JSON object into `w` (caller owns surroundings).
  void to_json(JsonWriter& w) const;
};

[[nodiscard]] const char* to_string(DeadlockReport::Kind kind);

/// Invoked synchronously by Simulation when a report is assembled.
using DeadlockHandler = std::function<void(const DeadlockReport&)>;

}  // namespace adriatic::kern
