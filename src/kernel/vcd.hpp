// Value-change-dump (VCD) tracing so waveforms from the system-level models
// can be inspected in standard viewers (GTKWave et al.).
#pragma once

#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "kernel/signal.hpp"
#include "kernel/time.hpp"
#include "util/types.hpp"

namespace adriatic::kern {

class Simulation;

class TraceFile {
 public:
  TraceFile(Simulation& sim, const std::string& path);
  ~TraceFile();

  TraceFile(const TraceFile&) = delete;
  TraceFile& operator=(const TraceFile&) = delete;

  /// Traces a boolean or integral signal under `display_name`.
  template <typename T>
  void trace(SignalInIf<T>& sig, const std::string& display_name) {
    static_assert(std::is_integral_v<T>, "VCD tracing needs integral values");
    Item item;
    item.name = display_name;
    item.id = make_id(items_.size());
    item.width = std::is_same_v<T, bool> ? 1 : sizeof(T) * 8;
    item.sample = [&sig, width = item.width] {
      return to_bits(static_cast<u64>(sig.read()), width);
    };
    items_.push_back(std::move(item));
  }

  /// Called by the simulation whenever signal values settle; writes deltas.
  void cycle(Time now);

  [[nodiscard]] u64 samples_written() const noexcept { return samples_; }

 private:
  struct Item {
    std::string name;
    std::string id;
    usize width = 1;
    std::function<std::string()> sample;
    std::string last;
  };

  static std::string make_id(usize index);
  static std::string to_bits(u64 v, usize width);
  void write_header();

  Simulation* sim_;
  std::ofstream out_;
  std::vector<Item> items_;
  bool header_written_ = false;
  bool have_last_time_ = false;
  Time last_time_;
  u64 samples_ = 0;
};

}  // namespace adriatic::kern
