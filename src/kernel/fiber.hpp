// Stackful fibers (cooperative user-level contexts) built on POSIX ucontext.
//
// SystemC SC_THREAD processes may call wait() arbitrarily deep inside nested
// function calls — e.g. the DRCF suspends an interface-method call made from
// another module's thread while a context switch is in flight (paper
// Sec. 5.3 step 4). That requires a full switchable stack per process, which
// stackless C++20 coroutines cannot provide without rewriting every callee.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace adriatic::kern {

class Fiber {
 public:
  /// Creates a suspended fiber that will run `fn` on first resume().
  explicit Fiber(std::function<void()> fn, std::size_t stack_bytes = 256 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the fiber until it yields or finishes. Must be called from the
  /// scheduler context (never from inside another fiber).
  void resume();

  /// Suspends the currently running fiber, returning control to the caller
  /// of resume(). Must be called from inside a fiber.
  static void yield();

  /// True once `fn` has returned.
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// True when any fiber is currently executing on this thread.
  [[nodiscard]] static bool in_fiber() noexcept;

 private:
  struct Impl;
  static void trampoline();

  std::unique_ptr<Impl> impl_;
  std::function<void()> fn_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace adriatic::kern
