#include "kernel/clock.hpp"

#include <stdexcept>

namespace adriatic::kern {

Clock::Clock(Simulation& sim, std::string name, Time period, double duty,
             Time start)
    : Signal<bool>(sim, std::move(name), false), period_(period) {
  init(duty, start);
}

Clock::Clock(Object& parent, std::string name, Time period, double duty,
             Time start)
    : Signal<bool>(parent, std::move(name), false), period_(period) {
  init(duty, start);
}

void Clock::init(double duty, Time start) {
  if (period_.is_zero()) throw std::invalid_argument("Clock: zero period");
  if (duty <= 0.0 || duty >= 1.0)
    throw std::invalid_argument("Clock: duty must be in (0,1)");
  high_time_ = Time::ps(
      static_cast<u64>(static_cast<double>(period_.picoseconds()) * duty));
  if (high_time_.is_zero()) high_time_ = Time::ps(1);
  low_time_ = period_ - high_time_;

  tick_event_ = std::make_unique<Event>(sim(), name() + ".tick");
  tick_process_ = std::make_unique<MethodProcess>(
      *this, "tick_proc", [this] { tick(); });
  tick_process_->sensitive(*tick_event_);
  tick_process_->dont_initialize();
  // Clock ticks are infrastructure, not model progress: without this a
  // clocked model could never trip the max_quiet_time livelock watchdog.
  tick_process_->set_daemon();
  // First rising edge.
  tick_event_->notify(start.is_zero() ? Time::ps(0) : start);
  if (start.is_zero()) {
    // notify(0) degrades to a delta notification: first edge in delta 1.
    tick_event_->notify_delta();
  }
}

void Clock::tick() {
  if (next_is_pos_) {
    write(true);
    tick_event_->notify(high_time_);
  } else {
    write(false);
    tick_event_->notify(low_time_);
  }
  next_is_pos_ = !next_is_pos_;
}

}  // namespace adriatic::kern
