// Mutex and semaphore channels (sc_mutex / sc_semaphore analogues). Used by
// bus models to serialize masters in blocking (non-split) mode.
#pragma once

#include "kernel/channel.hpp"
#include "kernel/event.hpp"
#include "kernel/simulation.hpp"
#include "util/types.hpp"

namespace adriatic::kern {

class Mutex : public Channel, public virtual Interface {
 public:
  Mutex(Simulation& sim, std::string name)
      : Channel(sim, std::move(name)),
        unlocked_(this->sim(), this->name() + ".unlocked") {}
  Mutex(Object& parent, std::string name)
      : Channel(parent, std::move(name)),
        unlocked_(this->sim(), this->name() + ".unlocked") {}

  [[nodiscard]] const char* kind() const override { return "mutex"; }

  /// Blocking lock; callable only from thread processes.
  void lock() {
    while (locked_) wait(unlocked_);
    locked_ = true;
    ++acquisitions_;
  }

  [[nodiscard]] bool try_lock() {
    if (locked_) return false;
    locked_ = true;
    ++acquisitions_;
    return true;
  }

  void unlock() {
    locked_ = false;
    unlocked_.notify();  // immediate: a waiter can win in this delta
  }

  [[nodiscard]] bool is_locked() const noexcept { return locked_; }
  [[nodiscard]] u64 acquisitions() const noexcept { return acquisitions_; }

 private:
  bool locked_ = false;
  u64 acquisitions_ = 0;
  Event unlocked_;
};

class Semaphore : public Channel, public virtual Interface {
 public:
  Semaphore(Simulation& sim, std::string name, usize initial)
      : Channel(sim, std::move(name)),
        count_(initial),
        posted_(this->sim(), this->name() + ".posted") {}
  Semaphore(Object& parent, std::string name, usize initial)
      : Channel(parent, std::move(name)),
        count_(initial),
        posted_(this->sim(), this->name() + ".posted") {}

  [[nodiscard]] const char* kind() const override { return "semaphore"; }

  void acquire() {
    while (count_ == 0) wait(posted_);
    --count_;
  }

  [[nodiscard]] bool try_acquire() {
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  void release() {
    ++count_;
    posted_.notify();
  }

  [[nodiscard]] usize value() const noexcept { return count_; }

 private:
  usize count_;
  Event posted_;
};

}  // namespace adriatic::kern
