// Named simulation objects. Every module, channel, port and process is an
// Object: it has a hierarchical name ("top.bus.arbiter"), a parent, and is
// registered with its Simulation so tools (tracing, the transformation pass)
// can look entities up by name — the equivalent of sc_object in SystemC.
#pragma once

#include <string>
#include <vector>

namespace adriatic::kern {

class Simulation;

class Object {
 public:
  /// Root object (no parent).
  Object(Simulation& sim, std::string name);
  /// Child object; inherits the parent's simulation.
  Object(Object& parent, std::string name);
  virtual ~Object();

  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  [[nodiscard]] const std::string& basename() const noexcept { return name_; }
  [[nodiscard]] const std::string& name() const noexcept { return full_name_; }
  [[nodiscard]] Object* parent() const noexcept { return parent_; }
  [[nodiscard]] Simulation& sim() const noexcept { return *sim_; }
  [[nodiscard]] const std::vector<Object*>& children() const noexcept {
    return children_;
  }

  /// Short tag describing the object class ("module", "signal", ...), used
  /// by introspection reports.
  [[nodiscard]] virtual const char* kind() const { return "object"; }

 private:
  void register_self();

  Simulation* sim_;
  Object* parent_;
  std::string name_;
  std::string full_name_;
  std::vector<Object*> children_;
};

}  // namespace adriatic::kern
