// The simulation context and scheduler: evaluate / update / delta-notify /
// timed-notify phases per the SystemC 2.0 functional specification.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "kernel/diagnostics.hpp"
#include "kernel/sched_trace.hpp"
#include "kernel/time.hpp"
#include "util/types.hpp"

namespace adriatic::kern {

class Object;
class Event;
class Process;
class Channel;
class TraceFile;

/// Why a run() call returned.
enum class StopReason : u8 {
  kTimeLimit,    ///< Reached the requested duration.
  kNoActivity,   ///< Event queues drained; simulation quiescent.
  kExplicitStop, ///< A process called Simulation::stop().
  kStalled,      ///< The max_quiet_time progress watchdog fired (livelock).
};

/// Timing abstraction the scheduler runs under (see docs/timing_modes.md).
enum class TimingMode : u8 {
  /// Bus-cycle-accurate: every wait(Time) is a real scheduler round-trip.
  /// This is the paper's abstraction level and the conformance baseline —
  /// golden trace digests are only defined in this mode.
  kTimed,
  /// Loosely timed (TLM-2 style): thread processes accumulate wait(Time)
  /// delays in a per-process local-time offset and only synchronise with
  /// the scheduler at quantum expiry, event waits, or zero-time yields.
  /// Functional results are preserved; trace digests and exact event
  /// interleavings are not.
  kLoose,
};

class Simulation {
 public:
  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // -- Control --------------------------------------------------------------

  /// Runs for `duration` of simulated time (default: until no activity).
  StopReason run(Time duration = Time::max());
  /// Requests the scheduler to stop after the current delta cycle.
  void stop() noexcept { stop_requested_ = true; }
  /// Thread-safe stop request (e.g. a campaign watchdog on another OS
  /// thread): sticky until observed by run(), which returns kExplicitStop
  /// at the next delta-cycle or time-advance boundary. Unlike stop(), this
  /// is safe to call while run() is executing on a different thread.
  void request_stop() noexcept {
    external_stop_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] u64 delta_count() const noexcept { return delta_count_; }
  [[nodiscard]] u64 activations() const noexcept { return activations_; }

  // -- Timing mode (temporal decoupling) ------------------------------------

  /// Selects the timing abstraction for this run. Switch before run() (or
  /// between run() calls); flipping it mid-quantum would strand accumulated
  /// local offsets.
  void set_timing_mode(TimingMode m) noexcept { timing_mode_ = m; }
  [[nodiscard]] TimingMode timing_mode() const noexcept { return timing_mode_; }
  [[nodiscard]] bool loose() const noexcept {
    return timing_mode_ == TimingMode::kLoose;
  }

  /// Global quantum for kLoose: the largest local-time offset a decoupled
  /// process may accumulate before it must synchronise with the scheduler.
  /// Must be nonzero.
  void set_quantum(Time q);
  [[nodiscard]] Time quantum() const noexcept { return quantum_; }

  /// The calling process's view of time: global time plus its local offset
  /// (equal to now() in kTimed or outside a process).
  [[nodiscard]] Time local_now() const noexcept;

  /// Number of loose-mode synchronisations (quantum expiries and offset
  /// flushes before event waits) performed so far.
  [[nodiscard]] u64 loose_syncs() const noexcept { return loose_syncs_; }
  /// Kernel-internal: counted by ThreadProcess when it synchronises.
  void note_loose_sync() noexcept { ++loose_syncs_; }
  [[nodiscard]] bool pending_activity() const noexcept;
  /// Current timed-queue length including not-yet-compacted stale entries;
  /// exposed so tests can pin the compaction policy.
  [[nodiscard]] usize timed_queue_size() const noexcept {
    return timed_queue_.size();
  }

  // -- Elaboration ----------------------------------------------------------

  /// Runs binding checks and prepares initial process activation. Called
  /// automatically by the first run(); may be called explicitly.
  void elaborate();
  [[nodiscard]] bool elaborated() const noexcept { return elaborated_; }
  /// Registers a callback to run at elaboration (used for binding checks).
  void at_elaboration(std::function<void()> fn);

  // -- Introspection --------------------------------------------------------

  [[nodiscard]] Object* find_object(const std::string& full_name) const;
  [[nodiscard]] std::vector<Object*> top_level_objects() const;
  /// Thread processes left blocked on dynamic waits when the simulation went
  /// quiescent — the observable signature of a model deadlock (e.g. the
  /// paper's Sec. 5.4 blocking-bus case).
  [[nodiscard]] std::vector<Process*> starved_processes() const;

  // -- Hang diagnostics ------------------------------------------------------

  /// Sim-time progress watchdog: if simulated time is about to advance more
  /// than `t` past the last non-daemon process dispatch, run() stops with
  /// StopReason::kStalled and assembles a kLivelock DeadlockReport. Zero
  /// (the default) disables the watchdog. Daemon processes (e.g. clock
  /// ticks) do not count as progress, so a clocked model that only toggles
  /// its clock still trips the watchdog.
  void set_max_quiet_time(Time t) noexcept { max_quiet_time_ = t; }
  [[nodiscard]] Time max_quiet_time() const noexcept { return max_quiet_time_; }

  /// Installs a callback invoked synchronously whenever a DeadlockReport is
  /// assembled (quiescent deadlock or watchdog livelock). Pass nullptr /
  /// empty to remove.
  void set_deadlock_handler(DeadlockHandler h) {
    deadlock_handler_ = std::move(h);
  }

  /// The report from the most recent run(), if that run detected a hang.
  /// Cleared at the start of every run(). A deadlocked run still returns
  /// kNoActivity (existing callers key on that); check here for the details.
  [[nodiscard]] const std::optional<DeadlockReport>& deadlock_report()
      const noexcept {
    return deadlock_report_;
  }

  /// The process currently executing, or nullptr between activations.
  [[nodiscard]] Process* current_process() const noexcept {
    return current_process_;
  }

  // -- Scheduler tracing & conformance hooks --------------------------------

  /// Installs (or removes, with nullptr) the structured scheduler-trace
  /// observer. The observer sees every dispatch / update / notification /
  /// time-advance record; when detached the hooks cost one pointer check.
  void set_observer(SchedulerObserver* obs) noexcept { observer_ = obs; }
  [[nodiscard]] SchedulerObserver* observer() const noexcept {
    return observer_;
  }

  /// Disables/enables stale-entry compaction of the timed queue. Compaction
  /// is pure bookkeeping — it must never change scheduling order — and the
  /// conformance suite pins that by diffing trace digests with the knob in
  /// both positions.
  void set_timed_compaction(bool enabled) noexcept {
    timed_compaction_enabled_ = enabled;
  }

  /// TEST-ONLY: drain the runnable queue LIFO instead of FIFO. This is a
  /// deliberate scheduler-order perturbation used to prove the conformance
  /// digests actually detect evaluation-order changes; never enable it in a
  /// model.
  void debug_set_lifo_evaluation(bool enabled) noexcept {
    debug_lifo_evaluation_ = enabled;
  }

  // -- Kernel-internal interface (used by Event/Process/Channel) ------------

  void make_runnable(Process& p);
  void schedule_timed(Event& e, Time abs_time);
  void unschedule_timed(Event& e);
  void schedule_delta(Event& e);
  /// Called by ~Event: removes every queue reference to `e` so the scheduler
  /// never dereferences a destroyed event.
  void purge_event(Event& e);
  void request_update(Channel& ch);
  void attach_tracer(TraceFile& tf);
  void detach_tracer(TraceFile& tf);

 private:
  friend class Object;
  friend class Process;

  void register_object(Object& o);
  void unregister_object(Object& o);
  void adopt_process(Process& p);
  void unregister_process(Process& p);

  /// Runs one evaluation phase + update phase + delta notifications.
  /// Returns true if more runnable processes emerged.
  bool delta_cycle();
  void evaluate();
  void update();
  bool notify_delta_queue();
  void sample_tracers();

  struct TimedEntry {
    Time time;
    u64 seq;      ///< FIFO tie-break among same-time entries.
    Event* event;
    u64 generation;
    [[nodiscard]] bool operator>(const TimedEntry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  // Timed queue: a binary min-heap over a plain vector (not
  // std::priority_queue) so stale entries — cancelled or overridden
  // notifications, detected by generation mismatch — can be compacted in
  // place once they outnumber live ones. See compact_timed_queue().
  void timed_push(TimedEntry entry);
  void timed_pop();
  [[nodiscard]] const TimedEntry& timed_top() const { return timed_queue_.front(); }
  void compact_timed_queue();

  /// Snapshots the blocked non-daemon processes into a DeadlockReport.
  [[nodiscard]] DeadlockReport build_stall_report(DeadlockReport::Kind k) const;
  /// Stores the report, notifies the handler, logs a one-line summary.
  void report_stall(DeadlockReport::Kind k);

  /// True (and clears the flag) when request_stop() fired since last check.
  [[nodiscard]] bool consume_external_stop() noexcept {
    if (!external_stop_.load(std::memory_order_relaxed)) return false;
    external_stop_.store(false, std::memory_order_relaxed);
    return true;
  }

  /// Reports a scheduler decision to the observer, if one is installed.
  void emit(SchedRecord::Kind kind, u64 id) {
    if (observer_ != nullptr) [[unlikely]]
      observer_->on_record(
          SchedRecord{kind, now_.picoseconds(), delta_count_, id});
  }

  Time now_;
  u64 delta_count_ = 0;
  u64 activations_ = 0;
  TimingMode timing_mode_ = TimingMode::kTimed;
  Time quantum_ = Time::us(1);
  u64 loose_syncs_ = 0;
  u64 timed_seq_ = 0;
  u64 timed_stale_ = 0;  ///< Upper-bound estimate of stale timed entries.
  bool elaborated_ = false;
  bool stop_requested_ = false;
  /// Set by request_stop() from any OS thread; checked (and consumed) by
  /// run() at delta-cycle and time-advance boundaries.
  std::atomic<bool> external_stop_{false};
  bool timed_compaction_enabled_ = true;
  bool debug_lifo_evaluation_ = false;
  /// Progress watchdog (see set_max_quiet_time); zero disables.
  Time max_quiet_time_;
  /// Sim time of the most recent non-daemon process dispatch.
  Time last_progress_time_;
  DeadlockHandler deadlock_handler_;
  std::optional<DeadlockReport> deadlock_report_;
  bool sampling_tracers_ = false;  ///< Guards tracers_ mutation during sampling.
  SchedulerObserver* observer_ = nullptr;

  std::deque<Process*> runnable_;
  std::vector<Event*> delta_queue_;
  std::vector<Channel*> update_queue_;
  std::vector<TimedEntry> timed_queue_;
  /// Reused across delta cycles so update()/notify_delta_queue() do not
  /// allocate on every cycle (they swap with the live queues).
  std::vector<Event*> delta_scratch_;
  std::vector<Channel*> update_scratch_;

  Process* current_process_ = nullptr;
  std::map<std::string, Object*> objects_;
  std::vector<Object*> top_level_;
  std::vector<Process*> processes_;
  /// Spawned after elaboration; activated at the next delta cycle.
  std::vector<Process*> pending_dynamic_;
  std::vector<std::function<void()>> elaboration_hooks_;
  std::vector<TraceFile*> tracers_;
};

// -- Free wait() functions (SystemC style), callable from thread processes --

void wait();
void wait(Event& e);
void wait(Time t);
void wait(Time t, Event& e);
void wait_any(std::span<Event* const> events);
void wait_all(std::span<Event* const> events);
/// True if the calling thread's last wait(Time, Event&) ended by timeout.
[[nodiscard]] bool timed_out();

}  // namespace adriatic::kern
