#include "kernel/fiber.hpp"

#include <ucontext.h>

#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace adriatic::kern {

struct Fiber::Impl {
  ucontext_t ctx{};
  ucontext_t return_ctx{};
  std::vector<char> stack;
};

namespace {
// The fiber currently executing on this thread (nullptr = scheduler context).
thread_local Fiber* t_current = nullptr;
// Handoff slot for the trampoline, which makecontext cannot pass pointers to
// portably (its varargs are ints).
thread_local Fiber* t_starting = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : impl_(std::make_unique<Impl>()), fn_(std::move(fn)) {
  impl_->stack.resize(stack_bytes);
}

Fiber::~Fiber() {
  // Destroying a live suspended fiber abandons its stack frame. That is the
  // normal fate of simulation processes still blocked when the simulation is
  // torn down; destructors of locals on the fiber stack do not run, exactly
  // as in the SystemC reference simulator.
}

void Fiber::trampoline() {
  Fiber* self = t_starting;
  t_starting = nullptr;
  assert(self != nullptr);
  self->fn_();
  self->finished_ = true;
  // Return to the scheduler for the last time.
  swapcontext(&self->impl_->ctx, &self->impl_->return_ctx);
}

void Fiber::resume() {
  if (finished_) return;
  assert(t_current == nullptr && "resume() must be called from the scheduler");
  if (!started_) {
    started_ = true;
    if (getcontext(&impl_->ctx) != 0)
      throw std::runtime_error("Fiber: getcontext failed");
    impl_->ctx.uc_stack.ss_sp = impl_->stack.data();
    impl_->ctx.uc_stack.ss_size = impl_->stack.size();
    impl_->ctx.uc_link = nullptr;
    t_starting = this;
    makecontext(&impl_->ctx, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                0);
  }
  t_current = this;
  swapcontext(&impl_->return_ctx, &impl_->ctx);
  t_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = t_current;
  assert(self != nullptr && "yield() must be called from inside a fiber");
  t_current = nullptr;
  swapcontext(&self->impl_->ctx, &self->impl_->return_ctx);
  t_current = self;
}

bool Fiber::in_fiber() noexcept { return t_current != nullptr; }

}  // namespace adriatic::kern
