#include "kernel/fiber.hpp"

#include <ucontext.h>

#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <vector>

// ThreadSanitizer cannot follow swapcontext() on its own: it sees one OS
// thread jumping between unrelated stacks and reports false races. The fiber
// API below (exported by libtsan) tells it about every switch, which is what
// lets campaign workers run whole simulations under -fsanitize=thread.
#if defined(__SANITIZE_THREAD__)
#define ADRIATIC_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ADRIATIC_TSAN_FIBERS 1
#endif
#endif

#ifdef ADRIATIC_TSAN_FIBERS
extern "C" {
void* __tsan_get_current_fiber();
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace adriatic::kern {

struct Fiber::Impl {
  ucontext_t ctx{};
  ucontext_t return_ctx{};
  std::vector<char> stack;
#ifdef ADRIATIC_TSAN_FIBERS
  void* tsan_fiber = nullptr;
  void* tsan_return = nullptr;
  void tsan_enter() {
    tsan_return = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsan_fiber, 0);
  }
  void tsan_leave() { __tsan_switch_to_fiber(tsan_return, 0); }
#else
  void tsan_enter() {}
  void tsan_leave() {}
#endif
};

namespace {
// The fiber currently executing on this thread (nullptr = scheduler context).
thread_local Fiber* t_current = nullptr;
// Handoff slot for the trampoline, which makecontext cannot pass pointers to
// portably (its varargs are ints).
thread_local Fiber* t_starting = nullptr;

// Retired fiber stacks, kept per thread for reuse. Campaign jobs spawn
// thousands of short-lived processes; recycling stacks avoids both the
// allocation and the page-zeroing of a fresh 256 KB vector each time. The
// pool is bounded so a burst of unusually many concurrent fibers does not
// pin memory forever.
constexpr std::size_t kMaxPooledStacks = 64;
thread_local std::vector<std::vector<char>> t_stack_pool;

std::vector<char> acquire_stack(std::size_t bytes) {
  for (std::size_t i = t_stack_pool.size(); i-- > 0;) {
    if (t_stack_pool[i].size() == bytes) {
      std::vector<char> s = std::move(t_stack_pool[i]);
      t_stack_pool.erase(t_stack_pool.begin() +
                         static_cast<std::ptrdiff_t>(i));
      return s;
    }
  }
  std::vector<char> s;
  s.resize(bytes);
  return s;
}

void release_stack(std::vector<char>&& s) {
  if (!s.empty() && t_stack_pool.size() < kMaxPooledStacks)
    t_stack_pool.push_back(std::move(s));
}
}  // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : impl_(std::make_unique<Impl>()), fn_(std::move(fn)) {
  impl_->stack = acquire_stack(stack_bytes);
#ifdef ADRIATIC_TSAN_FIBERS
  impl_->tsan_fiber = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  // Destroying a live suspended fiber abandons its stack frame. That is the
  // normal fate of simulation processes still blocked when the simulation is
  // torn down; destructors of locals on the fiber stack do not run, exactly
  // as in the SystemC reference simulator. The stack itself is recycled.
#ifdef ADRIATIC_TSAN_FIBERS
  if (impl_->tsan_fiber != nullptr) __tsan_destroy_fiber(impl_->tsan_fiber);
#endif
  release_stack(std::move(impl_->stack));
}

void Fiber::trampoline() {
  Fiber* self = t_starting;
  t_starting = nullptr;
  assert(self != nullptr);
  self->fn_();
  self->finished_ = true;
  // Return to the scheduler for the last time.
  self->impl_->tsan_leave();
  swapcontext(&self->impl_->ctx, &self->impl_->return_ctx);
}

void Fiber::resume() {
  if (finished_) return;
  assert(t_current == nullptr && "resume() must be called from the scheduler");
  if (!started_) {
    started_ = true;
    if (getcontext(&impl_->ctx) != 0)
      throw std::runtime_error("Fiber: getcontext failed");
    impl_->ctx.uc_stack.ss_sp = impl_->stack.data();
    impl_->ctx.uc_stack.ss_size = impl_->stack.size();
    impl_->ctx.uc_link = nullptr;
    t_starting = this;
    makecontext(&impl_->ctx, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                0);
  }
  t_current = this;
  impl_->tsan_enter();
  swapcontext(&impl_->return_ctx, &impl_->ctx);
  t_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = t_current;
  assert(self != nullptr && "yield() must be called from inside a fiber");
  t_current = nullptr;
  self->impl_->tsan_leave();
  swapcontext(&self->impl_->ctx, &self->impl_->return_ctx);
  t_current = self;
}

bool Fiber::in_fiber() noexcept { return t_current != nullptr; }

}  // namespace adriatic::kern
