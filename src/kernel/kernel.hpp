// Umbrella header for the simulation kernel: a from-scratch implementation
// of the SystemC 2.0 modeling primitives the ADRIATIC methodology builds on.
#pragma once

#include "kernel/channel.hpp"
#include "kernel/clock.hpp"
#include "kernel/diagnostics.hpp"
#include "kernel/event.hpp"
#include "kernel/event_queue.hpp"
#include "kernel/fifo.hpp"
#include "kernel/module.hpp"
#include "kernel/object.hpp"
#include "kernel/port.hpp"
#include "kernel/process.hpp"
#include "kernel/signal.hpp"
#include "kernel/simulation.hpp"
#include "kernel/sync.hpp"
#include "kernel/time.hpp"
#include "kernel/vcd.hpp"
