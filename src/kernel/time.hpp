// Simulated time. SystemC 2.0 models time as an unsigned multiple of a time
// resolution; we fix the resolution at 1 picosecond, which spans ~213 days of
// simulated time in 64 bits — ample for system-level models.
#pragma once

#include <compare>
#include <limits>
#include <string>

#include "util/types.hpp"

namespace adriatic::kern {

class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time ps(u64 v) { return Time(v); }
  [[nodiscard]] static constexpr Time ns(u64 v) { return Time(v * 1'000ULL); }
  [[nodiscard]] static constexpr Time us(u64 v) {
    return Time(v * 1'000'000ULL);
  }
  [[nodiscard]] static constexpr Time ms(u64 v) {
    return Time(v * 1'000'000'000ULL);
  }
  [[nodiscard]] static constexpr Time sec(u64 v) {
    return Time(v * 1'000'000'000'000ULL);
  }
  [[nodiscard]] static constexpr Time zero() { return Time(0); }
  [[nodiscard]] static constexpr Time max() {
    return Time(std::numeric_limits<u64>::max());
  }

  /// Construct from a floating-point count of nanoseconds (rounds down).
  [[nodiscard]] static constexpr Time from_ns(double v) {
    return Time(static_cast<u64>(v * 1e3));
  }

  [[nodiscard]] constexpr u64 picoseconds() const { return ps_; }
  [[nodiscard]] constexpr double to_ns() const {
    return static_cast<double>(ps_) / 1e3;
  }
  [[nodiscard]] constexpr double to_us() const {
    return static_cast<double>(ps_) / 1e6;
  }
  [[nodiscard]] constexpr double to_ms() const {
    return static_cast<double>(ps_) / 1e9;
  }
  [[nodiscard]] constexpr double to_sec() const {
    return static_cast<double>(ps_) / 1e12;
  }
  [[nodiscard]] constexpr bool is_zero() const { return ps_ == 0; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) {
    ps_ += rhs.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ps_ -= rhs.ps_;
    return *this;
  }
  [[nodiscard]] friend constexpr Time operator+(Time a, Time b) {
    return Time(a.ps_ + b.ps_);
  }
  [[nodiscard]] friend constexpr Time operator-(Time a, Time b) {
    return Time(a.ps_ - b.ps_);
  }
  [[nodiscard]] friend constexpr Time operator*(Time a, u64 k) {
    return Time(a.ps_ * k);
  }
  [[nodiscard]] friend constexpr Time operator*(u64 k, Time a) {
    return Time(a.ps_ * k);
  }
  [[nodiscard]] friend constexpr u64 operator/(Time a, Time b) {
    return b.ps_ ? a.ps_ / b.ps_ : 0;
  }

  [[nodiscard]] std::string str() const;

 private:
  constexpr explicit Time(u64 ps) : ps_(ps) {}
  u64 ps_ = 0;
};

namespace literals {
constexpr Time operator""_ps(unsigned long long v) { return Time::ps(v); }
constexpr Time operator""_ns(unsigned long long v) { return Time::ns(v); }
constexpr Time operator""_us(unsigned long long v) { return Time::us(v); }
constexpr Time operator""_ms(unsigned long long v) { return Time::ms(v); }
}  // namespace literals

}  // namespace adriatic::kern
