// Periodic boolean clock channel (sc_clock analogue).
#pragma once

#include "kernel/module.hpp"
#include "kernel/signal.hpp"

namespace adriatic::kern {

class Clock : public Signal<bool> {
 public:
  /// A clock with the given period; rises first at `start`, stays high for
  /// duty*period, low for the remainder.
  Clock(Simulation& sim, std::string name, Time period, double duty = 0.5,
        Time start = Time::zero());
  Clock(Object& parent, std::string name, Time period, double duty = 0.5,
        Time start = Time::zero());

  [[nodiscard]] const char* kind() const override { return "clock"; }
  [[nodiscard]] Time period() const noexcept { return period_; }
  [[nodiscard]] double frequency_mhz() const noexcept {
    return period_.is_zero() ? 0.0 : 1e6 / static_cast<double>(period_.picoseconds());
  }

 private:
  void init(double duty, Time start);
  void tick();

  Time period_;
  Time high_time_;
  Time low_time_;
  bool next_is_pos_ = true;
  std::unique_ptr<Event> tick_event_;
  std::unique_ptr<MethodProcess> tick_process_;
};

}  // namespace adriatic::kern
