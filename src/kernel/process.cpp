#include "kernel/process.hpp"

#include <algorithm>
#include <stdexcept>

#include "kernel/event.hpp"
#include "kernel/simulation.hpp"
#include "util/log.hpp"

namespace adriatic::kern {

Process::Process(Object& parent, std::string name)
    : Object(parent, std::move(name)) {
  timeout_event_ =
      std::make_unique<Event>(sim(), this->name() + ".timeout");
  terminated_event_ =
      std::make_unique<Event>(sim(), this->name() + ".terminated");
  sim().adopt_process(*this);
}

Process::~Process() {
  for (Event* e : static_events_) e->remove_static(*this);
  clear_dynamic_waits();
  // Must happen here, not in ~Object(): once this destructor returns, the
  // object's dynamic type is no longer Process, and any scheduler list that
  // still names us (processes_, runnable_, pending_dynamic_) would dangle.
  sim().unregister_process(*this);
}

void Process::sensitive(Event& e) {
  static_events_.push_back(&e);
  e.add_static(*this);
}

void Process::static_triggered() {
  if (state_ != State::kWaitStatic) return;
  mark_ready();
}

void Process::dynamic_triggered(Event& e) {
  // The event has already removed us from its own waiter list.
  if (state_ != State::kWaitDynamic) return;
  std::erase(waited_events_, &e);
  if (wait_mode_ == WaitMode::kAnd) {
    if (and_pending_ > 0) --and_pending_;
    if (and_pending_ > 0) return;  // keep waiting for the rest
  }
  timed_out_ = (&e == timeout_event_.get());
  clear_dynamic_waits();
  mark_ready();
}

void Process::clear_dynamic_waits() {
  for (Event* e : waited_events_) e->remove_dynamic(*this);
  waited_events_.clear();
  timeout_event_->cancel();
  wait_mode_ = WaitMode::kNone;
  and_pending_ = 0;
}

void Process::mark_ready() {
  state_ = State::kReady;
  sim().make_runnable(*this);
}

// ---------------------------------------------------------------------------
// ThreadProcess

ThreadProcess::ThreadProcess(Object& parent, std::string name,
                             std::function<void()> fn, usize stack_bytes)
    : Process(parent, std::move(name)),
      fiber_(std::move(fn), stack_bytes) {}

void ThreadProcess::activate() {
  fiber_.resume();
  if (fiber_.finished()) {
    state_ = State::kTerminated;
    clear_dynamic_waits();
    terminated_event_->notify_delta();
  }
}

void ThreadProcess::suspend() {
  Fiber::yield();
  // Execution resumes here when the scheduler re-activates us.
}

void ThreadProcess::wait_static() {
  if (static_events_.empty())
    log::warn() << name()
                << ": wait() with empty static sensitivity never returns";
  state_ = State::kWaitStatic;
  wait_since_ = sim().now();
  suspend();
}

void ThreadProcess::wait_event(Event& e) {
  timed_out_ = false;
  wait_mode_ = WaitMode::kOr;
  waited_events_.push_back(&e);
  e.add_dynamic(*this);
  state_ = State::kWaitDynamic;
  wait_since_ = sim().now();
  suspend();
}

void ThreadProcess::wait_time(Time t) {
  timeout_event_->notify(t);
  wait_event(*timeout_event_);
  timed_out_ = false;  // a plain timed wait is not a "timeout"
}

void ThreadProcess::wait_time_event(Time t, Event& e) {
  timed_out_ = false;
  wait_mode_ = WaitMode::kOr;
  timeout_event_->notify(t);
  waited_events_.push_back(timeout_event_.get());
  timeout_event_->add_dynamic(*this);
  waited_events_.push_back(&e);
  e.add_dynamic(*this);
  state_ = State::kWaitDynamic;
  wait_since_ = sim().now();
  suspend();
}

void ThreadProcess::wait_any(std::span<Event* const> events) {
  if (events.empty()) throw std::invalid_argument("wait_any: empty list");
  timed_out_ = false;
  wait_mode_ = WaitMode::kOr;
  for (Event* e : events) {
    waited_events_.push_back(e);
    e->add_dynamic(*this);
  }
  state_ = State::kWaitDynamic;
  wait_since_ = sim().now();
  suspend();
}

void ThreadProcess::wait_all(std::span<Event* const> events) {
  if (events.empty()) throw std::invalid_argument("wait_all: empty list");
  timed_out_ = false;
  wait_mode_ = WaitMode::kAnd;
  and_pending_ = events.size();
  for (Event* e : events) {
    waited_events_.push_back(e);
    e->add_dynamic(*this);
  }
  state_ = State::kWaitDynamic;
  wait_since_ = sim().now();
  suspend();
}

// ---------------------------------------------------------------------------
// MethodProcess

MethodProcess::MethodProcess(Object& parent, std::string name,
                             std::function<void()> fn)
    : Process(parent, std::move(name)), fn_(std::move(fn)) {}

void MethodProcess::activate() {
  // Default resumption is static sensitivity; the body may override it by
  // calling next_trigger().
  state_ = State::kWaitStatic;
  wait_since_ = sim().now();
  fn_();
}

void MethodProcess::next_trigger(Event& e) {
  wait_mode_ = WaitMode::kOr;
  waited_events_.push_back(&e);
  e.add_dynamic(*this);
  state_ = State::kWaitDynamic;
  wait_since_ = sim().now();
}

void MethodProcess::next_trigger(Time t) {
  timeout_event_->notify(t);
  next_trigger(*timeout_event_);
}

}  // namespace adriatic::kern
