#include "kernel/process.hpp"

#include <algorithm>
#include <stdexcept>

#include "kernel/event.hpp"
#include "kernel/simulation.hpp"
#include "util/log.hpp"

namespace adriatic::kern {

Process::Process(Object& parent, std::string name)
    : Object(parent, std::move(name)) {
  timeout_event_ =
      std::make_unique<Event>(sim(), this->name() + ".timeout");
  terminated_event_ =
      std::make_unique<Event>(sim(), this->name() + ".terminated");
  sim().adopt_process(*this);
}

Process::~Process() {
  for (Event* e : static_events_) e->remove_static(*this);
  clear_dynamic_waits();
  // Must happen here, not in ~Object(): once this destructor returns, the
  // object's dynamic type is no longer Process, and any scheduler list that
  // still names us (processes_, runnable_, pending_dynamic_) would dangle.
  sim().unregister_process(*this);
}

void Process::sensitive(Event& e) {
  static_events_.push_back(&e);
  e.add_static(*this);
}

void Process::static_triggered() {
  if (state_ != State::kWaitStatic) return;
  mark_ready();
}

void Process::dynamic_triggered(Event& e) {
  // The event has already removed us from its own waiter list.
  if (state_ != State::kWaitDynamic) return;
  std::erase(waited_events_, &e);
  if (wait_mode_ == WaitMode::kAnd) {
    if (and_pending_ > 0) --and_pending_;
    if (and_pending_ > 0) return;  // keep waiting for the rest
  }
  timed_out_ = (&e == timeout_event_.get());
  clear_dynamic_waits();
  mark_ready();
}

void Process::clear_dynamic_waits() {
  for (Event* e : waited_events_) e->remove_dynamic(*this);
  waited_events_.clear();
  timeout_event_->cancel();
  wait_mode_ = WaitMode::kNone;
  and_pending_ = 0;
}

void Process::mark_ready() {
  state_ = State::kReady;
  sim().make_runnable(*this);
}

// ---------------------------------------------------------------------------
// ThreadProcess

ThreadProcess::ThreadProcess(Object& parent, std::string name,
                             std::function<void()> fn, usize stack_bytes)
    : Process(parent, std::move(name)),
      fiber_(
          [this, fn = std::move(fn)] {
            fn();
            // Publish any local-time offset still pending when the body
            // returns, so a loosely-timed thread terminates at the simulated
            // time it actually reached instead of silently discarding the
            // tail of its last quantum.
            flush_local_time();
          },
          stack_bytes) {}

void ThreadProcess::activate() {
  fiber_.resume();
  if (fiber_.finished()) {
    state_ = State::kTerminated;
    clear_dynamic_waits();
    terminated_event_->notify_delta();
  }
}

void ThreadProcess::suspend() {
  Fiber::yield();
  // Execution resumes here when the scheduler re-activates us.
}

void ThreadProcess::wait_static() {
  flush_local_time();
  if (static_events_.empty())
    log::warn() << name()
                << ": wait() with empty static sensitivity never returns";
  state_ = State::kWaitStatic;
  wait_since_ = sim().now();
  suspend();
}

void ThreadProcess::wait_event(Event& e) {
  if (!local_offset_.is_zero()) {
    // Loose mode with a pending offset: the awaited event must be armed
    // ACROSS the flush window. Flushing first (a plain timed wait) would
    // drop any notification landing inside it — the classic missed-event
    // deadlock: a producer the caller just signalled completes and notifies
    // while the caller is still paying down its local offset. Arm both; a
    // plain wait remains only when the flush finishes without the event.
    wait_time_event(Time::zero(), e);
    if (!timed_out_) return;  // the event fired inside the flush window
    timed_out_ = false;
  }
  timed_out_ = false;
  wait_mode_ = WaitMode::kOr;
  waited_events_.push_back(&e);
  e.add_dynamic(*this);
  state_ = State::kWaitDynamic;
  wait_since_ = sim().now();
  suspend();
}

void ThreadProcess::wait_time(Time t) {
  Simulation& s = sim();
  if (s.loose() && !timing_strict_) {
    // Temporal decoupling: run ahead of global time, deferring the
    // scheduler round-trip until the quantum is exhausted. A zero-time
    // wait still synchronises — models use wait(0) as an explicit yield,
    // and skipping it could spin a polling loop forever.
    local_offset_ += t;
    if (!t.is_zero() && local_offset_ < s.quantum()) return;
    sync_local_time();
    return;
  }
  timeout_event_->notify(t);
  wait_event(*timeout_event_);
  timed_out_ = false;  // a plain timed wait is not a "timeout"
}

void ThreadProcess::sync_local_time() {
  // Offset cleared before the wait so wait_event()'s flush is a no-op
  // (no recursion) and a quantum boundary looks like one plain timed wait.
  const Time offset = local_offset_;
  local_offset_ = Time::zero();
  sim().note_loose_sync();
  timeout_event_->notify(offset);  // offset == 0 degrades to a delta yield
  wait_event(*timeout_event_);
  timed_out_ = false;
}

void ThreadProcess::wait_time_event(Time t, Event& e) {
  // Fold any pending loose-mode offset into the timeout instead of flushing
  // first: the timeout should expire `t` after the caller's LOCAL time, and
  // the event stays armed over the whole flush window (see wait_event).
  const Time owed = local_offset_;
  if (!owed.is_zero()) {
    t += owed;
    local_offset_ = Time::zero();
    sim().note_loose_sync();
  }
  timed_out_ = false;
  wait_mode_ = WaitMode::kOr;
  timeout_event_->notify(t);
  waited_events_.push_back(timeout_event_.get());
  timeout_event_->add_dynamic(*this);
  waited_events_.push_back(&e);
  e.add_dynamic(*this);
  state_ = State::kWaitDynamic;
  const Time start = sim().now();
  wait_since_ = start;
  suspend();
  // Local time is monotonic: if the event cut the wait short, the unpaid
  // part of the folded offset is still owed. Discarding it would let a
  // delta-notified producer/consumer ping-pong contract an entire run to
  // one global instant — time would never advance and run(duration) would
  // never return. Carrying it forward makes the quantum check in
  // wait_time() force a hard sync once enough debt accumulates.
  if (!timed_out_ && !owed.is_zero()) {
    const Time paid = sim().now() - start;
    if (paid < owed) local_offset_ = owed - paid;
  }
}

void ThreadProcess::wait_any(std::span<Event* const> events) {
  if (events.empty()) throw std::invalid_argument("wait_any: empty list");
  if (!local_offset_.is_zero()) {
    // Arm the whole set across the flush window (see wait_event); re-arm
    // plainly below only when the flush timeout was the sole trigger.
    const Time offset = local_offset_;
    local_offset_ = Time::zero();
    sim().note_loose_sync();
    timed_out_ = false;
    wait_mode_ = WaitMode::kOr;
    timeout_event_->notify(offset);
    waited_events_.push_back(timeout_event_.get());
    timeout_event_->add_dynamic(*this);
    for (Event* e : events) {
      waited_events_.push_back(e);
      e->add_dynamic(*this);
    }
    state_ = State::kWaitDynamic;
    const Time start = sim().now();
    wait_since_ = start;
    suspend();
    if (!timed_out_) {
      // An event cut the flush short: carry the unpaid offset forward
      // (see wait_time_event — local time is monotonic).
      const Time paid = sim().now() - start;
      if (paid < offset) local_offset_ = offset - paid;
      return;
    }
    timed_out_ = false;
  }
  timed_out_ = false;
  wait_mode_ = WaitMode::kOr;
  for (Event* e : events) {
    waited_events_.push_back(e);
    e->add_dynamic(*this);
  }
  state_ = State::kWaitDynamic;
  wait_since_ = sim().now();
  suspend();
}

void ThreadProcess::wait_all(std::span<Event* const> events) {
  if (events.empty()) throw std::invalid_argument("wait_all: empty list");
  // wait_all keeps flush-first semantics: a conjunction with a timeout mixed
  // in has no clean meaning in the kOr/kAnd machinery, so events notified
  // inside the flush window are not observed — the standard SystemC
  // "notification before wait() is lost" contract, merely with a window
  // widened by up to one quantum. Loosely-timed models combining wait_all
  // with signalling producers should re-check state flags after waking.
  flush_local_time();
  timed_out_ = false;
  wait_mode_ = WaitMode::kAnd;
  and_pending_ = events.size();
  for (Event* e : events) {
    waited_events_.push_back(e);
    e->add_dynamic(*this);
  }
  state_ = State::kWaitDynamic;
  wait_since_ = sim().now();
  suspend();
}

// ---------------------------------------------------------------------------
// MethodProcess

MethodProcess::MethodProcess(Object& parent, std::string name,
                             std::function<void()> fn)
    : Process(parent, std::move(name)), fn_(std::move(fn)) {}

void MethodProcess::activate() {
  // Default resumption is static sensitivity; the body may override it by
  // calling next_trigger().
  state_ = State::kWaitStatic;
  wait_since_ = sim().now();
  fn_();
}

void MethodProcess::next_trigger(Event& e) {
  wait_mode_ = WaitMode::kOr;
  waited_events_.push_back(&e);
  e.add_dynamic(*this);
  state_ = State::kWaitDynamic;
  wait_since_ = sim().now();
}

void MethodProcess::next_trigger(Time t) {
  timeout_event_->notify(t);
  next_trigger(*timeout_event_);
}

}  // namespace adriatic::kern
