// Module base (sc_module analogue): a named hierarchy node that owns
// processes and ports. Processes are spawned with explicit sensitivity
// options rather than SystemC's macro magic.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/object.hpp"
#include "kernel/process.hpp"

namespace adriatic::kern {

struct SpawnOptions {
  std::vector<Event*> sensitivity;  ///< Static sensitivity list.
  bool dont_initialize = false;     ///< Skip the initialization activation.
  usize stack_bytes = 256 * 1024;   ///< Thread processes only.
};

class Module : public Object {
 public:
  Module(Simulation& sim, std::string name) : Object(sim, std::move(name)) {}
  Module(Object& parent, std::string name)
      : Object(parent, std::move(name)) {}

  [[nodiscard]] const char* kind() const override { return "module"; }

  /// Spawns an SC_THREAD-style process owned by this module.
  ThreadProcess& spawn_thread(std::string name, std::function<void()> fn,
                              SpawnOptions opts = {});

  /// Spawns an SC_METHOD-style process owned by this module.
  MethodProcess& spawn_method(std::string name, std::function<void()> fn,
                              SpawnOptions opts = {});

  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes()
      const noexcept {
    return processes_;
  }

 private:
  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace adriatic::kern
