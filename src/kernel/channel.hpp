// Primitive-channel base: channels mutate visible state only in the update
// phase, via the request_update()/update() protocol (sc_prim_channel).
#pragma once

#include "kernel/object.hpp"

namespace adriatic::kern {

/// Marker base for channel interfaces (sc_interface analogue). Interfaces
/// are abstract method sets implemented by channels and accessed via ports.
class Interface {
 public:
  virtual ~Interface() = default;
};

class Channel : public Object {
 public:
  using Object::Object;
  [[nodiscard]] const char* kind() const override { return "channel"; }

 protected:
  friend class Simulation;

  /// Queues this channel for an update() call at the end of the current
  /// evaluation phase. Idempotent within a delta cycle.
  void request_update();

  /// Applies pending writes; runs in the update phase.
  virtual void update() {}

 private:
  bool update_requested_ = false;
};

}  // namespace adriatic::kern
