#include "kernel/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "kernel/channel.hpp"
#include "kernel/event.hpp"
#include "kernel/object.hpp"
#include "kernel/port.hpp"
#include "kernel/process.hpp"
#include "kernel/vcd.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace adriatic::kern {

namespace {
// Compaction of stale timed-queue entries only kicks in past this size, so
// small models never pay for a heap rebuild.
constexpr u64 kCompactMinStale = 64;

// The process executing right now on this OS thread; lets the free wait()
// functions find their process without a global simulation context.
thread_local Process* t_running = nullptr;

[[nodiscard]] ThreadProcess& running_thread(const char* what) {
  // Every wait() funnels through here, so avoid the dynamic_cast: is_thread()
  // fully discriminates (ThreadProcess is the only is_thread() == true class
  // and is final), making the downcast safe.
  Process* p = t_running;
  if (p == nullptr || !p->is_thread())
    throw std::logic_error(std::string(what) +
                           " may only be called from a thread process");
  return *static_cast<ThreadProcess*>(p);
}
}  // namespace

Simulation::Simulation() = default;
Simulation::~Simulation() = default;

void Simulation::set_quantum(Time q) {
  if (q.is_zero())
    throw std::invalid_argument("Simulation::set_quantum: zero quantum");
  quantum_ = q;
}

Time Simulation::local_now() const noexcept {
  const Process* p = current_process_;
  return p == nullptr ? now_ : now_ + p->local_time_offset();
}

// ---------------------------------------------------------------------------
// Registration

void Simulation::register_object(Object& o) {
  auto [it, inserted] = objects_.emplace(o.name(), &o);
  if (!inserted)
    throw std::invalid_argument("duplicate object name: " + o.name());
  if (o.parent() == nullptr) top_level_.push_back(&o);
}

void Simulation::unregister_object(Object& o) {
  objects_.erase(o.name());
  if (o.parent() == nullptr) std::erase(top_level_, &o);
  // Process list cleanup happens in unregister_process(), called from
  // ~Process(): by the time ~Object() runs the Process subobject is already
  // destroyed and a dynamic_cast here would (silently) yield nullptr.
}

void Simulation::unregister_process(Process& p) {
  std::erase(processes_, &p);
  std::erase(runnable_, &p);
  std::erase(pending_dynamic_, &p);
}

void Simulation::adopt_process(Process& p) {
  processes_.push_back(&p);
  // Processes spawned after elaboration (dynamic spawning) join the
  // schedule at the next delta cycle — deferred so that configuration
  // applied right after construction (dont_initialize, sensitivity) is
  // honoured before the first activation.
  if (elaborated_) pending_dynamic_.push_back(&p);
}

Object* Simulation::find_object(const std::string& full_name) const {
  auto it = objects_.find(full_name);
  return it == objects_.end() ? nullptr : it->second;
}

std::vector<Object*> Simulation::top_level_objects() const {
  return top_level_;
}

std::vector<Process*> Simulation::starved_processes() const {
  std::vector<Process*> out;
  for (Process* p : processes_)
    if (p->state() == Process::State::kWaitDynamic && p->is_thread() &&
        !p->is_daemon())
      out.push_back(p);
  return out;
}

// ---------------------------------------------------------------------------
// Hang diagnostics

DeadlockReport Simulation::build_stall_report(DeadlockReport::Kind k) const {
  DeadlockReport report;
  report.kind = k;
  report.at = now_;
  report.delta_count = delta_count_;
  report.activations = activations_;
  for (Process* p : processes_) {
    // kWaitDynamic covers blocked thread wait()s and method next_trigger()s
    // whose events will (deadlock) or may (livelock) never fire. Statically
    // sensitive processes are idle servers, not hang participants; daemons
    // opted out explicitly.
    if (p->state() != Process::State::kWaitDynamic || p->is_daemon()) continue;
    BlockedWaiter w;
    w.process = p->name();
    w.process_id = sched_name_hash(w.process);
    w.is_thread = p->is_thread();
    w.blocked_since = p->blocked_since();
    w.wait_duration = now_ - w.blocked_since;
    for (const Event* e : p->waited_events_) {
      w.awaited.push_back(e->name_);
      w.awaited_ids.push_back(sched_name_hash(e->name_));
    }
    report.waiters.push_back(std::move(w));
  }
  return report;
}

void Simulation::report_stall(DeadlockReport::Kind k) {
  DeadlockReport report = build_stall_report(k);
  // A clean drain — quiescence with nobody blocked — is not a deadlock.
  // A livelock is reportable even with no dynamic waiters (time was
  // spinning with nothing dispatching), so it always lands.
  if (k == DeadlockReport::Kind::kDeadlock && report.waiters.empty()) return;
  log::warn() << "simulation " << to_string(k) << " at " << now_.str() << ": "
              << report.waiters.size() << " process(es) blocked";
  for (const auto& w : report.waiters) {
    auto l = log::warn();
    l << "  waiter " << w.process << " on:";
    for (const auto& e : w.awaited) l << " " << e;
  }
  deadlock_report_.emplace(std::move(report));
  if (deadlock_handler_) deadlock_handler_(*deadlock_report_);
}

// ---------------------------------------------------------------------------
// Elaboration

void Simulation::at_elaboration(std::function<void()> fn) {
  elaboration_hooks_.push_back(std::move(fn));
}

void Simulation::elaborate() {
  if (elaborated_) return;
  for (auto& hook : elaboration_hooks_) hook();
  // Port binding checks.
  for (auto& [name, obj] : objects_) {
    if (auto* port = dynamic_cast<PortBase*>(obj)) port->check_binding();
  }
  // Initial activation of all processes (unless dont_initialize).
  for (Process* p : processes_) {
    if (p->wants_initialize()) {
      make_runnable(*p);
    } else {
      p->state_ = Process::State::kWaitStatic;
    }
  }
  elaborated_ = true;
}

// ---------------------------------------------------------------------------
// Scheduling primitives

void Simulation::make_runnable(Process& p) {
  if (p.state() == Process::State::kTerminated) return;
  if (p.in_runnable_queue_) return;
  p.in_runnable_queue_ = true;
  p.state_ = Process::State::kReady;
  runnable_.push_back(&p);
}

void Simulation::schedule_timed(Event& e, Time abs_time) {
  ++e.timed_refs_;
  timed_push(TimedEntry{abs_time, timed_seq_++, &e, e.generation_});
}

void Simulation::unschedule_timed(Event& e) {
  // Lazy removal: the queue entry goes stale (detected by generation check
  // on pop). We only count it here; once stale entries dominate the heap —
  // the signature of periodic cancel/renotify patterns like clocks or DRCF
  // prefetch timers — compact_timed_queue() rebuilds the heap without them,
  // bounding memory at ~2x the live entry count.
  (void)e;
  ++timed_stale_;
  if (timed_compaction_enabled_ && timed_stale_ >= kCompactMinStale &&
      2 * timed_stale_ >= timed_queue_.size())
    compact_timed_queue();
}

void Simulation::schedule_delta(Event& e) {
  ++e.delta_refs_;
  delta_queue_.push_back(&e);
}

void Simulation::purge_event(Event& e) {
  if (e.delta_refs_ != 0) {
    std::erase(delta_queue_, &e);
    // The delta dispatch loop may be mid-flight over delta_scratch_ when a
    // trigger callback destroys an event; null the slot instead of erasing
    // so the loop's iterators stay valid.
    std::replace(delta_scratch_.begin(), delta_scratch_.end(),
                 static_cast<Event*>(&e), static_cast<Event*>(nullptr));
    e.delta_refs_ = 0;
  }
  if (e.timed_refs_ != 0) {
    u64 removed_stale = 0;
    std::erase_if(timed_queue_, [&](const TimedEntry& t) {
      if (t.event != &e) return false;
      if (t.generation != e.generation_) ++removed_stale;
      return true;
    });
    std::make_heap(timed_queue_.begin(), timed_queue_.end(),
                   std::greater<TimedEntry>{});
    timed_stale_ -= std::min(timed_stale_, removed_stale);
    e.timed_refs_ = 0;
  }
}

void Simulation::request_update(Channel& ch) { update_queue_.push_back(&ch); }

void Simulation::attach_tracer(TraceFile& tf) { tracers_.push_back(&tf); }

void Simulation::detach_tracer(TraceFile& tf) {
  // A tracer may detach from inside a sample callback (a model destroys a
  // TraceFile whose sampled value had side effects); null the slot instead
  // of erasing so sample_tracers()'s index walk stays valid.
  if (sampling_tracers_) {
    std::replace(tracers_.begin(), tracers_.end(), &tf,
                 static_cast<TraceFile*>(nullptr));
  } else {
    std::erase(tracers_, &tf);
  }
}

// ---------------------------------------------------------------------------
// Scheduler phases

void Simulation::evaluate() {
  ADRIATIC_CHECK(current_process_ == nullptr,
                 "evaluation phase entered while a process is active");
  while (!runnable_.empty()) {
    Process* p;
    if (debug_lifo_evaluation_) [[unlikely]] {
      p = runnable_.back();  // test-only order perturbation
      runnable_.pop_back();
    } else {
      p = runnable_.front();
      runnable_.pop_front();
    }
    p->in_runnable_queue_ = false;
    ADRIATIC_CHECK(p->state() == Process::State::kReady,
                   "dispatched process not in kReady state");
    current_process_ = p;
    t_running = p;
    ++activations_;
    if (!p->is_daemon()) last_progress_time_ = now_;
    emit(SchedRecord::Kind::kDispatch, sched_name_hash(p->name()));
    p->activate();
    t_running = nullptr;
    current_process_ = nullptr;
  }
}

void Simulation::update() {
  // update() must not request further updates; snapshot the queue. The
  // scratch vector is a member so steady-state delta cycles allocate nothing.
  update_scratch_.clear();
  update_scratch_.swap(update_queue_);
  for (Channel* ch : update_scratch_) {
    ch->update_requested_ = false;
    emit(SchedRecord::Kind::kUpdate, sched_name_hash(ch->name()));
    ch->update();
  }
  ADRIATIC_CHECK(update_queue_.empty(),
                 "a channel requested an update from inside update()");
}

bool Simulation::notify_delta_queue() {
  delta_scratch_.clear();
  delta_scratch_.swap(delta_queue_);
  for (Event* e : delta_scratch_) {
    if (e == nullptr) continue;  // purged by ~Event mid-dispatch
    // Consuming the slot releases our claim on the pointer; an event whose
    // refcounts drop to zero here may be destroyed freely afterwards.
    ADRIATIC_CHECK(e->delta_refs_ > 0,
                   "delta-queue slot names an event with no delta refs");
    --e->delta_refs_;
    if (e->pending_ == Event::Pending::kDelta) {
      emit(SchedRecord::Kind::kDeltaNotify, sched_name_hash(e->name_));
      e->trigger();
    }
  }
  return !runnable_.empty();
}

void Simulation::sample_tracers() {
  if (tracers_.empty()) return;
  // Index walk under the sampling flag: a sample callback may detach a
  // tracer (detach_tracer nulls its slot) or attach a new one (push_back —
  // safe with indices even through reallocation; the newcomer is sampled
  // this same instant).
  sampling_tracers_ = true;
  for (usize i = 0; i < tracers_.size(); ++i) {
    if (tracers_[i] != nullptr) tracers_[i]->cycle(now_);
  }
  sampling_tracers_ = false;
  std::erase(tracers_, static_cast<TraceFile*>(nullptr));
}

// ---------------------------------------------------------------------------
// Timed queue (min-heap with stale-entry compaction)

void Simulation::timed_push(TimedEntry entry) {
  timed_queue_.push_back(entry);
  std::push_heap(timed_queue_.begin(), timed_queue_.end(),
                 std::greater<TimedEntry>{});
}

void Simulation::timed_pop() {
  std::pop_heap(timed_queue_.begin(), timed_queue_.end(),
                std::greater<TimedEntry>{});
  timed_queue_.pop_back();
}

void Simulation::compact_timed_queue() {
  std::erase_if(timed_queue_, [](const TimedEntry& t) {
    if (t.event->generation_ != t.generation) {
      ADRIATIC_CHECK(t.event->timed_refs_ > 0,
                     "compaction found an entry with no timed refs");
      --t.event->timed_refs_;
      return true;
    }
    return false;
  });
  std::make_heap(timed_queue_.begin(), timed_queue_.end(),
                 std::greater<TimedEntry>{});
  timed_stale_ = 0;
}

bool Simulation::delta_cycle() {
  evaluate();
  // Activate processes spawned during the evaluation phase: their
  // post-construction configuration (sensitivity, dont_initialize) is final
  // by now, and they must be able to receive this delta's notifications.
  if (!pending_dynamic_.empty()) {
    std::vector<Process*> pending;
    pending.swap(pending_dynamic_);
    for (Process* p : pending) {
      if (p->wants_initialize()) {
        make_runnable(*p);
      } else {
        p->state_ = Process::State::kWaitStatic;
      }
    }
  }
  update();
  ++delta_count_;
  const bool more = notify_delta_queue();
  emit(SchedRecord::Kind::kDeltaCycleEnd, 0);
  return more;
}

StopReason Simulation::run(Time duration) {
  if (!elaborated_) elaborate();
  stop_requested_ = false;
  deadlock_report_.reset();
  last_progress_time_ = now_;
  const bool bounded = duration != Time::max();
  const Time end = bounded ? now_ + duration : Time::max();

  for (;;) {
    // Run delta cycles while there is immediate work: runnable processes,
    // pending channel updates, or pending delta notifications (the latter
    // can exist without runnables, e.g. notify_delta() before run()).
    while (!runnable_.empty() || !update_queue_.empty() ||
           !delta_queue_.empty() || !pending_dynamic_.empty()) {
      delta_cycle();
      if (stop_requested_ || consume_external_stop()) {
        sample_tracers();
        return StopReason::kExplicitStop;
      }
    }
    sample_tracers();
    // Cross-thread stop (campaign watchdog): honoured between time steps so
    // a run dominated by timed activity still stops promptly.
    if (consume_external_stop()) return StopReason::kExplicitStop;

    // Advance to the next valid timed notification.
    for (;;) {
      if (timed_queue_.empty()) {
        timed_stale_ = 0;
        // Quiescent with blocked waiters left behind: a model deadlock.
        // Report it, but keep the kNoActivity return — callers distinguish
        // a clean drain from a deadlock via deadlock_report().
        report_stall(DeadlockReport::Kind::kDeadlock);
        return StopReason::kNoActivity;
      }
      const TimedEntry top = timed_top();
      if (top.event->generation_ != top.generation ||
          top.event->pending_ != Event::Pending::kTimed ||
          top.event->pending_time_ != top.time) {
        timed_pop();  // stale (cancelled or overridden)
        ADRIATIC_CHECK(top.event->timed_refs_ > 0,
                       "stale timed entry names an event with no timed refs");
        --top.event->timed_refs_;
        if (timed_stale_ > 0) --timed_stale_;
        continue;
      }
      if (bounded && top.time > end) {
        now_ = end;
        return StopReason::kTimeLimit;
      }
      // Progress watchdog: simulated time is about to move further past the
      // last non-daemon dispatch than the model tolerates — a livelock
      // (e.g. a clock or retry timer spinning while every worker is stuck).
      if (!max_quiet_time_.is_zero() &&
          top.time - last_progress_time_ > max_quiet_time_) {
        now_ = last_progress_time_ + max_quiet_time_;
        report_stall(DeadlockReport::Kind::kLivelock);
        return StopReason::kStalled;
      }
      now_ = top.time;
      emit(SchedRecord::Kind::kTimeAdvance, 0);
      // Trigger every valid entry scheduled for this instant.
      while (!timed_queue_.empty() && timed_top().time == now_) {
        const TimedEntry entry = timed_top();
        timed_pop();
        ADRIATIC_CHECK(entry.event->timed_refs_ > 0,
                       "timed-queue entry names an event with no timed refs");
        --entry.event->timed_refs_;
        if (entry.event->generation_ == entry.generation &&
            entry.event->pending_ == Event::Pending::kTimed &&
            entry.event->pending_time_ == now_) {
          emit(SchedRecord::Kind::kTimedNotify,
               sched_name_hash(entry.event->name_));
          entry.event->trigger();
        } else if (timed_stale_ > 0) {
          --timed_stale_;
        }
      }
      break;
    }
  }
}

bool Simulation::pending_activity() const noexcept {
  return !runnable_.empty() || !delta_queue_.empty() ||
         !timed_queue_.empty() || !pending_dynamic_.empty();
}

// ---------------------------------------------------------------------------
// Free wait functions

void wait() { running_thread("wait()").wait_static(); }

void wait(Event& e) { running_thread("wait(event)").wait_event(e); }

void wait(Time t) { running_thread("wait(time)").wait_time(t); }

void wait(Time t, Event& e) {
  running_thread("wait(time, event)").wait_time_event(t, e);
}

void wait_any(std::span<Event* const> events) {
  running_thread("wait_any").wait_any(events);
}

void wait_all(std::span<Event* const> events) {
  running_thread("wait_all").wait_all(events);
}

bool timed_out() { return running_thread("timed_out()").timed_out(); }

}  // namespace adriatic::kern
