// Signal channels (sc_signal analogue) with evaluate/update semantics: a
// write becomes visible in the next delta cycle, and value changes notify
// value_changed_event(); arithmetic signals also provide pos/neg edges.
#pragma once

#include <type_traits>

#include "kernel/channel.hpp"
#include "kernel/event.hpp"
#include "kernel/port.hpp"
#include "kernel/simulation.hpp"
#include "util/types.hpp"

namespace adriatic::kern {

template <typename T>
class SignalInIf : public virtual Interface {
 public:
  [[nodiscard]] virtual const T& read() const = 0;
  [[nodiscard]] virtual Event& value_changed_event() = 0;
};

template <typename T>
class SignalInOutIf : public virtual SignalInIf<T> {
 public:
  virtual void write(const T& value) = 0;
};

template <typename T>
class Signal : public Channel, public virtual SignalInOutIf<T> {
 public:
  Signal(Simulation& sim, std::string name, T initial = T{})
      : Channel(sim, std::move(name)),
        cur_(initial),
        next_(initial),
        value_changed_(this->sim(), this->name() + ".value_changed"),
        posedge_(this->sim(), this->name() + ".posedge"),
        negedge_(this->sim(), this->name() + ".negedge") {}

  Signal(Object& parent, std::string name, T initial = T{})
      : Channel(parent, std::move(name)),
        cur_(initial),
        next_(initial),
        value_changed_(this->sim(), this->name() + ".value_changed"),
        posedge_(this->sim(), this->name() + ".posedge"),
        negedge_(this->sim(), this->name() + ".negedge") {}

  [[nodiscard]] const char* kind() const override { return "signal"; }

  [[nodiscard]] const T& read() const override { return cur_; }
  [[nodiscard]] operator const T&() const { return cur_; }

  void write(const T& value) override {
    next_ = value;
    if (!(next_ == cur_)) request_update();
  }
  Signal& operator=(const T& value) {
    write(value);
    return *this;
  }

  [[nodiscard]] Event& value_changed_event() override {
    return value_changed_;
  }
  /// 0 -> nonzero transition (arithmetic types only).
  [[nodiscard]] Event& posedge_event() { return posedge_; }
  /// nonzero -> 0 transition (arithmetic types only).
  [[nodiscard]] Event& negedge_event() { return negedge_; }

  /// Number of committed value changes (for instrumentation).
  [[nodiscard]] u64 change_count() const noexcept { return changes_; }

 protected:
  void update() override {
    if (next_ == cur_) return;
    const T old = cur_;
    cur_ = next_;
    ++changes_;
    value_changed_.notify_delta();
    if constexpr (std::is_arithmetic_v<T>) {
      if (old == T{} && cur_ != T{}) posedge_.notify_delta();
      if (old != T{} && cur_ == T{}) negedge_.notify_delta();
    } else {
      (void)old;
    }
  }

 private:
  T cur_;
  T next_;
  u64 changes_ = 0;
  Event value_changed_;
  Event posedge_;
  Event negedge_;
};

/// Convenience input port for a signal of T.
template <typename T>
class In : public Port<SignalInIf<T>> {
 public:
  using Port<SignalInIf<T>>::Port;
  [[nodiscard]] const T& read() const { return (*this)->read(); }
  [[nodiscard]] Event& value_changed_event() {
    return (*this)->value_changed_event();
  }
};

/// Convenience output (in/out) port for a signal of T.
template <typename T>
class Out : public Port<SignalInOutIf<T>> {
 public:
  using Port<SignalInOutIf<T>>::Port;
  void write(const T& v) { (*this)->write(v); }
  [[nodiscard]] const T& read() const { return (*this)->read(); }
  [[nodiscard]] Event& value_changed_event() {
    return (*this)->value_changed_event();
  }
};

}  // namespace adriatic::kern
