// Structured scheduler tracing: the kernel can report every observable
// scheduler decision — process dispatch, channel update, delta/timed
// notification, time advance, delta-cycle boundary — through a single
// observer hook. The hook costs one pointer check per site when detached,
// so models pay nothing unless a tracer is installed.
//
// Records identify entities by a stable FNV-1a hash of their hierarchical
// name (never by pointer), so two runs of the same model — on different
// threads, in different processes, with different allocators — produce the
// same record stream if and only if the scheduler made the same decisions.
// `conformance::TraceDigest` folds the stream into one comparable value.
#pragma once

#include <string_view>

#include "util/types.hpp"

namespace adriatic::kern {

struct SchedRecord {
  enum class Kind : u8 {
    kDispatch = 1,      ///< A process entered its activation (evaluate phase).
    kUpdate = 2,        ///< A channel applied its pending write (update phase).
    kDeltaNotify = 3,   ///< A delta notification fired.
    kTimedNotify = 4,   ///< A timed notification fired.
    kTimeAdvance = 5,   ///< Simulated time moved forward.
    kDeltaCycleEnd = 6, ///< A delta cycle completed.
    /// A DRCF background-prefetch lifecycle edge: emitted by the fabric's
    /// context scheduler when a prefetch load starts fetching and when one
    /// is aborted for a demand load. Never emitted by on-demand loads, so
    /// digests of models that do not prefetch are unaffected.
    kPrefetch = 7,
    /// A task checkpoint/restore edge: emitted when a fabric snapshots a
    /// quiescent task's state and when it restores one (drcf/task_state.hpp).
    /// Never emitted unless checkpointing/migration is actually used, so
    /// digests of models that do not migrate are unaffected.
    kMigrate = 8,
  };
  Kind kind;
  u64 time_ps;  ///< Simulated time of the record.
  u64 delta;    ///< Simulation::delta_count() at the record.
  u64 id;       ///< sched_name_hash() of the entity; 0 when not applicable.
};

/// FNV-1a over the hierarchical name: the stable entity identifier used in
/// SchedRecord::id.
[[nodiscard]] constexpr u64 sched_name_hash(std::string_view s) noexcept {
  u64 h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

class SchedulerObserver {
 public:
  virtual ~SchedulerObserver() = default;
  /// Called synchronously from inside the scheduler; must not touch the
  /// simulation it observes.
  virtual void on_record(const SchedRecord& r) = 0;
};

}  // namespace adriatic::kern
