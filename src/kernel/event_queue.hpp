// Event queue channel (sc_event_queue analogue): unlike a plain Event —
// which holds at most one pending notification — an EventQueue remembers
// every notify() and fires its output event once per queued notification,
// in time order. Useful for modeling request streams where coincident
// notifications must not collapse.
#pragma once

#include <queue>

#include "kernel/channel.hpp"
#include "kernel/event.hpp"
#include "kernel/module.hpp"
#include "kernel/simulation.hpp"
#include "kernel/time.hpp"

namespace adriatic::kern {

class EventQueue : public Module {
 public:
  EventQueue(Simulation& sim, std::string name) : Module(sim, std::move(name)) {
    init();
  }
  EventQueue(Object& parent, std::string name)
      : Module(parent, std::move(name)) {
    init();
  }

  /// Queues a notification `delay` from now. Multiple pending notifications
  /// coexist; each produces one trigger of default_event().
  void notify(Time delay = Time::zero()) {
    const Time at = sim().now() + delay;
    pending_.push(at);
    ++queued_;
    arm();
  }

  /// Drops all pending notifications, including one that already matured
  /// into a delta notification of default_event() this very cycle
  /// (sc_event_queue::cancel_all semantics). The pump stays consistent: a
  /// notify() later in the same delta re-arms the timer from scratch.
  void cancel_all() {
    pending_ = {};
    timer_->cancel();
    out_->cancel();
  }

  /// The event that fires once per queued notification.
  [[nodiscard]] Event& default_event() noexcept { return *out_; }

  [[nodiscard]] usize pending_count() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] u64 total_queued() const noexcept { return queued_; }

 private:
  void init() {
    out_ = std::make_unique<Event>(sim(), name() + ".out");
    timer_ = std::make_unique<Event>(sim(), name() + ".timer");
    auto& proc = spawn_method("pump", [this] { pump(); });
    proc.sensitive(*timer_);
    proc.dont_initialize();
  }

  void arm() {
    if (pending_.empty()) return;
    const Time next = pending_.top();
    const Time now = sim().now();
    // Event::notify keeps the earliest pending notification, which is
    // exactly the semantics we need for the head of the queue.
    timer_->notify(next > now ? next - now : Time::zero());
  }

  void pump() {
    const Time now = sim().now();
    // Fire exactly one notification per trigger; coincident entries are
    // spread over consecutive delta cycles (sc_event_queue behaviour).
    if (!pending_.empty() && pending_.top() <= now) {
      pending_.pop();
      out_->notify_delta();
    }
    arm();
  }

  std::priority_queue<Time, std::vector<Time>, std::greater<Time>> pending_;
  std::unique_ptr<Event> out_;
  std::unique_ptr<Event> timer_;
  u64 queued_ = 0;
};

}  // namespace adriatic::kern
