#include "kernel/module.hpp"

#include "kernel/event.hpp"

namespace adriatic::kern {

namespace {
template <typename P>
P& finish_spawn(std::vector<std::unique_ptr<Process>>& owned,
                std::unique_ptr<P> p, const SpawnOptions& opts) {
  for (Event* e : opts.sensitivity) p->sensitive(*e);
  if (opts.dont_initialize) p->dont_initialize();
  P& ref = *p;
  owned.push_back(std::move(p));
  return ref;
}
}  // namespace

ThreadProcess& Module::spawn_thread(std::string name,
                                    std::function<void()> fn,
                                    SpawnOptions opts) {
  auto p = std::make_unique<ThreadProcess>(*this, std::move(name),
                                           std::move(fn), opts.stack_bytes);
  return finish_spawn(processes_, std::move(p), opts);
}

MethodProcess& Module::spawn_method(std::string name,
                                    std::function<void()> fn,
                                    SpawnOptions opts) {
  auto p =
      std::make_unique<MethodProcess>(*this, std::move(name), std::move(fn));
  return finish_spawn(processes_, std::move(p), opts);
}

}  // namespace adriatic::kern
