#include "kernel/vcd.hpp"

#include "kernel/simulation.hpp"

namespace adriatic::kern {

TraceFile::TraceFile(Simulation& sim, const std::string& path)
    : sim_(&sim), out_(path) {
  sim_->attach_tracer(*this);
}

TraceFile::~TraceFile() {
  sim_->detach_tracer(*this);
  out_.flush();
}

std::string TraceFile::make_id(usize index) {
  // VCD identifiers: printable ASCII 33..126, base-94.
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

std::string TraceFile::to_bits(u64 v, usize width) {
  std::string s(width, '0');
  for (usize i = 0; i < width; ++i)
    if ((v >> i) & 1) s[width - 1 - i] = '1';
  return s;
}

void TraceFile::write_header() {
  out_ << "$timescale 1ps $end\n$scope module adriatic $end\n";
  for (auto& item : items_) {
    out_ << "$var wire " << item.width << ' ' << item.id << ' ' << item.name
         << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

void TraceFile::cycle(Time now) {
  if (!header_written_) write_header();
  // Only one sample per simulated instant (the settled values).
  if (have_last_time_ && now == last_time_) {
    // Re-sample in place: later deltas at the same instant supersede.
  }
  bool time_emitted = false;
  for (auto& item : items_) {
    std::string v = item.sample();
    if (v == item.last) continue;
    if (!time_emitted) {
      out_ << '#' << now.picoseconds() << '\n';
      time_emitted = true;
    }
    if (item.width == 1) {
      out_ << v << item.id << '\n';
    } else {
      out_ << 'b' << v << ' ' << item.id << '\n';
    }
    item.last = std::move(v);
    ++samples_;
  }
  have_last_time_ = true;
  last_time_ = now;
}

}  // namespace adriatic::kern
