// Bounded FIFO channel with blocking and non-blocking access (sc_fifo).
#pragma once

#include <deque>
#include <stdexcept>

#include "kernel/channel.hpp"
#include "kernel/event.hpp"
#include "kernel/simulation.hpp"
#include "util/types.hpp"

namespace adriatic::kern {

template <typename T>
class FifoInIf : public virtual Interface {
 public:
  virtual T read() = 0;                 ///< Blocking (thread processes only).
  virtual bool nb_read(T& out) = 0;     ///< Non-blocking.
  [[nodiscard]] virtual usize num_available() const = 0;
  [[nodiscard]] virtual Event& data_written_event() = 0;
};

template <typename T>
class FifoOutIf : public virtual Interface {
 public:
  virtual void write(const T& v) = 0;   ///< Blocking (thread processes only).
  virtual bool nb_write(const T& v) = 0;
  [[nodiscard]] virtual usize num_free() const = 0;
  [[nodiscard]] virtual Event& data_read_event() = 0;
};

template <typename T>
class Fifo : public Channel, public FifoInIf<T>, public FifoOutIf<T> {
 public:
  Fifo(Simulation& sim, std::string name, usize capacity = 16)
      : Channel(sim, std::move(name)),
        capacity_(capacity),
        written_(this->sim(), this->name() + ".written"),
        read_ev_(this->sim(), this->name() + ".read") {
    if (capacity_ == 0) throw std::invalid_argument("Fifo: zero capacity");
  }

  Fifo(Object& parent, std::string name, usize capacity = 16)
      : Channel(parent, std::move(name)),
        capacity_(capacity),
        written_(this->sim(), this->name() + ".written"),
        read_ev_(this->sim(), this->name() + ".read") {
    if (capacity_ == 0) throw std::invalid_argument("Fifo: zero capacity");
  }

  [[nodiscard]] const char* kind() const override { return "fifo"; }

  T read() override {
    while (buf_.empty()) wait(written_);
    T v = std::move(buf_.front());
    buf_.pop_front();
    read_ev_.notify_delta();
    return v;
  }

  bool nb_read(T& out) override {
    if (buf_.empty()) return false;
    out = std::move(buf_.front());
    buf_.pop_front();
    read_ev_.notify_delta();
    return true;
  }

  void write(const T& v) override {
    while (buf_.size() >= capacity_) wait(read_ev_);
    buf_.push_back(v);
    written_.notify_delta();
  }

  bool nb_write(const T& v) override {
    if (buf_.size() >= capacity_) return false;
    buf_.push_back(v);
    written_.notify_delta();
    return true;
  }

  [[nodiscard]] usize num_available() const override { return buf_.size(); }
  [[nodiscard]] usize num_free() const override {
    return capacity_ - buf_.size();
  }
  [[nodiscard]] Event& data_written_event() override { return written_; }
  [[nodiscard]] Event& data_read_event() override { return read_ev_; }

 private:
  usize capacity_;
  std::deque<T> buf_;
  Event written_;
  Event read_ev_;
};

}  // namespace adriatic::kern
