#include "kernel/time.hpp"

#include "util/strings.hpp"

namespace adriatic::kern {

std::string Time::str() const {
  const u64 v = ps_;
  if (v == 0) return "0 s";
  if (v % 1'000'000'000'000ULL == 0)
    return strfmt("%llu s", static_cast<unsigned long long>(v / 1'000'000'000'000ULL));
  if (v % 1'000'000'000ULL == 0)
    return strfmt("%llu ms", static_cast<unsigned long long>(v / 1'000'000'000ULL));
  if (v % 1'000'000ULL == 0)
    return strfmt("%llu us", static_cast<unsigned long long>(v / 1'000'000ULL));
  if (v % 1'000ULL == 0)
    return strfmt("%llu ns", static_cast<unsigned long long>(v / 1'000ULL));
  return strfmt("%llu ps", static_cast<unsigned long long>(v));
}

}  // namespace adriatic::kern
