#include "kernel/event.hpp"

#include <algorithm>

#include "kernel/process.hpp"
#include "kernel/simulation.hpp"

namespace adriatic::kern {

Event::Event(Simulation& sim, std::string name)
    : sim_(&sim), name_(std::move(name)) {}

Event::~Event() = default;

void Event::notify() {
  // Immediate notification overrides any pending one and fires now.
  ++generation_;
  pending_ = Pending::kNone;
  trigger();
}

void Event::notify_delta() {
  if (pending_ == Pending::kDelta) return;
  // A pending timed notification is later than a delta: override it.
  ++generation_;
  pending_ = Pending::kDelta;
  sim_->schedule_delta(*this);
}

void Event::notify(Time delay) {
  if (delay.is_zero()) {
    notify_delta();
    return;
  }
  const Time abs = sim_->now() + delay;
  if (pending_ == Pending::kDelta) return;  // delta is earlier
  if (pending_ == Pending::kTimed && pending_time_ <= abs) return;
  ++generation_;
  pending_ = Pending::kTimed;
  pending_time_ = abs;
  sim_->schedule_timed(*this, abs);
}

void Event::cancel() {
  ++generation_;
  pending_ = Pending::kNone;
}

void Event::trigger() {
  // The event is firing: any bookkeeping for a pending notification is void.
  ++generation_;
  pending_ = Pending::kNone;

  // Dynamic waiters are one-shot; detach them before calling back, since a
  // woken process may immediately re-register.
  std::vector<Process*> dyn;
  dyn.swap(dynamic_waiters_);
  for (Process* p : dyn) p->dynamic_triggered(*this);

  // Static sensitivity persists across triggers.
  for (Process* p : static_waiters_) p->static_triggered();
}

void Event::add_static(Process& p) { static_waiters_.push_back(&p); }

void Event::remove_static(Process& p) { std::erase(static_waiters_, &p); }

void Event::add_dynamic(Process& p) { dynamic_waiters_.push_back(&p); }

void Event::remove_dynamic(Process& p) { std::erase(dynamic_waiters_, &p); }

}  // namespace adriatic::kern
