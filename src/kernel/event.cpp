#include "kernel/event.hpp"

#include <algorithm>

#include "kernel/process.hpp"
#include "kernel/simulation.hpp"

namespace adriatic::kern {

Event::Event(Simulation& sim, std::string name)
    : sim_(&sim), name_(std::move(name)) {}

Event::~Event() {
  // Mutual deregistration: processes keep raw pointers to the events they
  // are sensitive to (and vice versa), and destruction order is the model's
  // business — a Signal declared after a Module dies first, while the
  // Module's processes still list its events. Scrub those back-references
  // here so ~Process never touches a freed event, and drop any scheduler
  // queue entries that still name us.
  for (Process* p : static_waiters_) std::erase(p->static_events_, this);
  for (Process* p : dynamic_waiters_) std::erase(p->waited_events_, this);
  // Both queues use lazy removal, so a cancelled or overridden notification
  // leaves a stale slot naming us long after pending_ went back to kNone —
  // the refcounts, not pending_, say whether the scheduler still holds a
  // pointer that must be purged.
  if (delta_refs_ != 0 || timed_refs_ != 0) sim_->purge_event(*this);
}

void Event::notify() {
  // Immediate notification overrides any pending one and fires now.
  if (pending_ == Pending::kTimed) sim_->unschedule_timed(*this);
  ++generation_;
  pending_ = Pending::kNone;
  trigger();
}

void Event::notify_delta() {
  if (pending_ == Pending::kDelta) return;
  // A pending timed notification is later than a delta: override it.
  if (pending_ == Pending::kTimed) sim_->unschedule_timed(*this);
  ++generation_;
  pending_ = Pending::kDelta;
  sim_->schedule_delta(*this);
}

void Event::notify(Time delay) {
  if (delay.is_zero()) {
    notify_delta();
    return;
  }
  const Time abs = sim_->now() + delay;
  if (pending_ == Pending::kDelta) return;  // delta is earlier
  if (pending_ == Pending::kTimed) {
    if (pending_time_ <= abs) return;
    sim_->unschedule_timed(*this);  // overridden by an earlier deadline
  }
  ++generation_;
  pending_ = Pending::kTimed;
  pending_time_ = abs;
  sim_->schedule_timed(*this, abs);
}

void Event::cancel() {
  if (pending_ == Pending::kTimed) sim_->unschedule_timed(*this);
  ++generation_;
  pending_ = Pending::kNone;
}

void Event::trigger() {
  // The event is firing: any bookkeeping for a pending notification is void.
  ++generation_;
  pending_ = Pending::kNone;

  // Dynamic waiters are one-shot; detach them before calling back, since a
  // woken process may immediately re-register.
  std::vector<Process*> dyn;
  dyn.swap(dynamic_waiters_);
  for (Process* p : dyn) p->dynamic_triggered(*this);

  // Static sensitivity persists across triggers.
  for (Process* p : static_waiters_) p->static_triggered();
}

void Event::add_static(Process& p) { static_waiters_.push_back(&p); }

void Event::remove_static(Process& p) { std::erase(static_waiters_, &p); }

void Event::add_dynamic(Process& p) { dynamic_waiters_.push_back(&p); }

void Event::remove_dynamic(Process& p) { std::erase(dynamic_waiters_, &p); }

}  // namespace adriatic::kern
