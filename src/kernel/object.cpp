#include "kernel/object.hpp"

#include <stdexcept>

#include "kernel/channel.hpp"
#include "kernel/simulation.hpp"

namespace adriatic::kern {

Object::Object(Simulation& sim, std::string name)
    : sim_(&sim), parent_(nullptr), name_(std::move(name)), full_name_(name_) {
  register_self();
}

Object::Object(Object& parent, std::string name)
    : sim_(&parent.sim()),
      parent_(&parent),
      name_(std::move(name)),
      full_name_(parent.name() + "." + name_) {
  parent_->children_.push_back(this);
  register_self();
}

Object::~Object() {
  if (parent_ != nullptr) {
    auto& sib = parent_->children_;
    std::erase(sib, this);
  }
  sim_->unregister_object(*this);
}

void Object::register_self() {
  if (name_.empty()) throw std::invalid_argument("Object: empty name");
  sim_->register_object(*this);
}

void Channel::request_update() {
  if (update_requested_) return;
  update_requested_ = true;
  sim().request_update(*this);
}

}  // namespace adriatic::kern
