// Simulation processes: thread processes (SC_THREAD — stackful, may block in
// wait()) and method processes (SC_METHOD — run-to-completion callbacks).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kernel/fiber.hpp"
#include "kernel/object.hpp"
#include "kernel/time.hpp"
#include "util/types.hpp"

namespace adriatic::kern {

class Event;
class Simulation;

class Process : public Object {
 public:
  enum class State : u8 {
    kReady,       ///< In the runnable queue.
    kWaitStatic,  ///< Waiting on static sensitivity.
    kWaitDynamic, ///< Waiting on a dynamic wait()/next_trigger() condition.
    kTerminated,
  };

  Process(Object& parent, std::string name);
  ~Process() override;

  [[nodiscard]] virtual bool is_thread() const noexcept = 0;
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] const char* kind() const override { return "process"; }

  /// Adds `e` to the static sensitivity list (elaboration time).
  void sensitive(Event& e);
  /// Skip the initialization run at simulation start.
  void dont_initialize() noexcept { dont_initialize_ = true; }
  [[nodiscard]] bool wants_initialize() const noexcept {
    return !dont_initialize_;
  }

  /// Daemon processes are servers that legitimately idle on request events
  /// forever; they are excluded from starvation (deadlock) reports.
  void set_daemon(bool daemon = true) noexcept { daemon_ = daemon; }
  [[nodiscard]] bool is_daemon() const noexcept { return daemon_; }

  /// Opts this process out of temporal decoupling: in TimingMode::kLoose its
  /// wait(Time) calls still go through the scheduler one by one. Needed by
  /// processes whose side effects between waits are consumed asynchronously
  /// (e.g. a thread toggling a signal other processes edge-detect — under
  /// decoupling the toggles would collapse into one delta and lose edges).
  void set_timing_strict(bool strict = true) noexcept {
    timing_strict_ = strict;
  }
  [[nodiscard]] bool timing_strict() const noexcept { return timing_strict_; }

  /// Accumulated loose-mode delay not yet synchronised with the scheduler:
  /// this process's view of time is sim().now() + local_time_offset().
  /// Always zero in TimingMode::kTimed and while the process is suspended.
  [[nodiscard]] Time local_time_offset() const noexcept {
    return local_offset_;
  }

  /// Notified when the process terminates (thread function returned).
  [[nodiscard]] Event& terminated_event() noexcept { return *terminated_event_; }

  /// True if the last timed wait ended via timeout rather than event.
  [[nodiscard]] bool timed_out() const noexcept { return timed_out_; }

  /// Sim time at which the current wait began (diagnostics: wait duration in
  /// DeadlockReport). Meaningful while state() is a wait state.
  [[nodiscard]] Time blocked_since() const noexcept { return wait_since_; }

 protected:
  friend class Simulation;
  friend class Event;

  /// Executes one activation (resumes the fiber / calls the method body).
  virtual void activate() = 0;

  /// Called by an event this process dynamically waits on.
  void dynamic_triggered(Event& e);
  /// Called by an event in this process's static sensitivity list.
  void static_triggered();

  void clear_dynamic_waits();
  void mark_ready();

  enum class WaitMode : u8 { kNone, kOr, kAnd };

  State state_ = State::kReady;
  WaitMode wait_mode_ = WaitMode::kNone;
  Time wait_since_;    ///< Sim time the current wait began.
  Time local_offset_;  ///< Loose-mode local time ahead of sim().now().
  usize and_pending_ = 0;  ///< Outstanding events for an and-list wait.
  std::vector<Event*> waited_events_;
  std::unique_ptr<Event> timeout_event_;
  std::unique_ptr<Event> terminated_event_;
  std::vector<Event*> static_events_;
  bool dont_initialize_ = false;
  bool daemon_ = false;
  bool timing_strict_ = false;
  bool timed_out_ = false;
  bool in_runnable_queue_ = false;
};

/// SC_THREAD analogue: runs `fn` on its own fiber; wait() suspends it.
class ThreadProcess final : public Process {
 public:
  ThreadProcess(Object& parent, std::string name, std::function<void()> fn,
                usize stack_bytes = 256 * 1024);

  [[nodiscard]] bool is_thread() const noexcept override { return true; }

  // -- Blocking waits; callable only from within this process's fiber ------
  // (exposed via the free functions in wait.hpp).
  void wait_static();
  void wait_event(Event& e);
  void wait_time(Time t);
  /// Waits for `e` or a timeout; sets timed_out() accordingly.
  void wait_time_event(Time t, Event& e);
  void wait_any(std::span<Event* const> events);
  void wait_all(std::span<Event* const> events);

 private:
  void activate() override;
  void suspend();
  /// Loose mode: performs one real timed wait for the accumulated local
  /// offset (a synchronisation point) and resets the offset.
  void sync_local_time();
  /// Loose mode: synchronises iff a local offset is pending. Every blocking
  /// wait flushes first so event waits happen at the process's local time.
  void flush_local_time() {
    if (!local_offset_.is_zero()) sync_local_time();
  }

  Fiber fiber_;
};

/// SC_METHOD analogue: a run-to-completion callback.
class MethodProcess final : public Process {
 public:
  MethodProcess(Object& parent, std::string name, std::function<void()> fn);

  [[nodiscard]] bool is_thread() const noexcept override { return false; }

  /// One-shot dynamic sensitivity override (SystemC next_trigger).
  void next_trigger(Event& e);
  void next_trigger(Time t);

 private:
  void activate() override;

  std::function<void()> fn_;
};

}  // namespace adriatic::kern
