// Ports (sc_port analogue): typed access points through which a module calls
// interface methods on channels bound during elaboration. Ports record their
// bindings so the transformation pass (paper Fig. 4 phase 2, "analysis of
// instance") can discover a design's connectivity without source parsing.
#pragma once

#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

#include "kernel/channel.hpp"
#include "kernel/object.hpp"
#include "util/types.hpp"

namespace adriatic::kern {

class PortBase : public Object {
 public:
  PortBase(Object& owner, std::string name, std::string interface_name,
           usize min_bindings)
      : Object(owner, std::move(name)),
        interface_name_(std::move(interface_name)),
        min_bindings_(min_bindings) {}

  [[nodiscard]] const char* kind() const override { return "port"; }

  /// Demangled-ish name of the interface this port requires.
  [[nodiscard]] const std::string& interface_name() const noexcept {
    return interface_name_;
  }

  /// Full names of channels bound to this port (empty string for anonymous
  /// interfaces that are not simulation Objects).
  [[nodiscard]] const std::vector<std::string>& bound_channel_names()
      const noexcept {
    return bound_names_;
  }

  [[nodiscard]] virtual usize binding_count() const noexcept = 0;

  /// Elaboration-time check that enough interfaces were bound.
  void check_binding() const {
    if (binding_count() < min_bindings_)
      throw std::logic_error("port " + name() + " requires " +
                             std::to_string(min_bindings_) +
                             " binding(s), has " +
                             std::to_string(binding_count()));
  }

 protected:
  void record_binding(Interface& iface) {
    if (auto* obj = dynamic_cast<Object*>(&iface))
      bound_names_.push_back(obj->name());
    else
      bound_names_.emplace_back();
  }

 private:
  std::string interface_name_;
  usize min_bindings_;
  std::vector<std::string> bound_names_;
};

/// A port requiring interface IF. Supports multiple bindings (multiport);
/// operator-> dispatches to the first binding.
template <typename IF>
class Port : public PortBase {
  static_assert(std::is_base_of_v<Interface, IF>,
                "Port interface must derive from kern::Interface");

 public:
  Port(Object& owner, std::string name, usize min_bindings = 1)
      : PortBase(owner, std::move(name), typeid(IF).name(), min_bindings) {}

  void bind(IF& iface) {
    ifaces_.push_back(&iface);
    record_binding(iface);
  }
  void operator()(IF& iface) { bind(iface); }

  [[nodiscard]] usize binding_count() const noexcept override {
    return ifaces_.size();
  }
  [[nodiscard]] usize size() const noexcept { return ifaces_.size(); }

  [[nodiscard]] IF* operator->() const {
    if (ifaces_.empty())
      throw std::logic_error("port " + name() + " used before binding");
    return ifaces_.front();
  }

  [[nodiscard]] IF& operator[](usize i) const { return *ifaces_.at(i); }

 private:
  std::vector<IF*> ifaces_;
};

}  // namespace adriatic::kern
