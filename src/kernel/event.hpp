// Simulation events with the SystemC 2.0 notification rules:
//   notify()            — immediate: triggers in the current evaluation phase
//   notify_delta()      — triggers in the next delta cycle
//   notify(Time)        — triggers after a simulated delay
// An event carries at most one pending notification; an earlier notification
// overrides a later one, and immediate overrides everything.
#pragma once

#include <string>
#include <vector>

#include "kernel/time.hpp"
#include "util/types.hpp"

namespace adriatic::kern {

class Simulation;
class Process;

class Event {
 public:
  explicit Event(Simulation& sim, std::string name = "");
  /// Detaches from every process that references this event (static
  /// sensitivity and dynamic waits) and purges scheduler-queue entries, so
  /// an event may safely be destroyed before the processes or the
  /// simulation that reference it.
  ~Event();

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void notify();             ///< Immediate notification.
  void notify_delta();       ///< Next-delta notification.
  void notify(Time delay);   ///< Timed (delay==0 behaves like delta).
  void cancel();             ///< Withdraw any pending notification.

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Simulation& sim() const noexcept { return *sim_; }
  [[nodiscard]] bool has_pending() const noexcept {
    return pending_ != Pending::kNone;
  }

 private:
  friend class Simulation;
  friend class Process;
  friend class ThreadProcess;
  friend class MethodProcess;

  enum class Pending : u8 { kNone, kDelta, kTimed };

  /// Fire: wake statically sensitive and dynamically waiting processes.
  void trigger();

  void add_static(Process& p);
  void remove_static(Process& p);
  void add_dynamic(Process& p);
  void remove_dynamic(Process& p);

  Simulation* sim_;
  std::string name_;
  Pending pending_ = Pending::kNone;
  Time pending_time_;   ///< Absolute trigger time when pending_ == kTimed.
  u64 generation_ = 0;  ///< Invalidates stale queue entries.
  u64 timed_refs_ = 0;  ///< Timed-queue entries (live + stale) naming us.
  u64 delta_refs_ = 0;  ///< Delta-queue/scratch slots (live + stale) naming us.

  std::vector<Process*> static_waiters_;
  std::vector<Process*> dynamic_waiters_;
};

}  // namespace adriatic::kern
