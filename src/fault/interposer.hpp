// Bus fault interposers: transparent shims that sit on a master or slave
// path and apply a FaultPlan to the traffic flowing through them — the one
// mechanism behind memory soft errors, flaky configuration fetches and
// stalling slaves alike. An interposer injects three fault classes:
//
//   kError    the transaction fails (kSlaveError / false) without reaching
//             the wrapped target;
//   kDelay    the calling thread stalls for the rule's delay, then the
//             transaction proceeds normally (timing-only fault);
//   kCorrupt  the transaction completes but read payload bits are flipped
//             (distinct positions, so the upset weight is exact).
//
// Every injection is appended to a FaultLedger (the interposer's own, or a
// shared one via set_ledger) so campaigns can report and digest the exact
// fault sequence.
#pragma once

#include <string>

#include "bus/interfaces.hpp"
#include "fault/ledger.hpp"
#include "fault/plan.hpp"
#include "kernel/module.hpp"

namespace adriatic::fault {

/// Master-path interposer: implements bus::BusMasterIf, forwards to a
/// downstream BusMasterIf bound via bind() (late binding is fine — the
/// first transaction must simply happen after it).
class BusFaultInterposer : public kern::Module, public bus::BusMasterIf {
 public:
  BusFaultInterposer(kern::Object& parent, std::string name, FaultPlan plan);

  void bind(bus::BusMasterIf& downstream) noexcept { down_ = &downstream; }
  [[nodiscard]] bool bound() const noexcept { return down_ != nullptr; }

  /// Redirects ledger appends to a shared ledger (e.g. a component- or
  /// campaign-owned one). Pass nullptr to fall back to the own ledger.
  void set_ledger(FaultLedger* ledger) noexcept {
    ledger_ = ledger != nullptr ? ledger : &own_ledger_;
  }
  [[nodiscard]] const FaultLedger& ledger() const noexcept { return *ledger_; }
  [[nodiscard]] u64 injected() const noexcept {
    return ledger_->injected_count();
  }

  // bus::BusMasterIf ---------------------------------------------------------
  bus::BusStatus read(bus::addr_t add, bus::word* data, u32 priority) override;
  bus::BusStatus write(bus::addr_t add, bus::word* data,
                       u32 priority) override;
  bus::BusStatus burst_read(bus::addr_t add, std::span<bus::word> data,
                            u32 priority) override;
  bus::BusStatus burst_write(bus::addr_t add, std::span<const bus::word> data,
                             u32 priority) override;

 private:
  /// Consults the plan; applies delay in place; records the injection.
  /// Returns the action for kError/kCorrupt handling by the caller.
  std::optional<FaultAction> intercept(bus::addr_t add, bool is_read);

  FaultInjector injector_;
  FaultLedger own_ledger_;
  FaultLedger* ledger_ = &own_ledger_;
  bus::BusMasterIf* down_ = nullptr;
  u64 site_;
};

/// Slave-path interposer: wraps any bus::BusSlaveIf, mirroring its address
/// range — drop-in on a Bus where the original slave was bound. Supersedes
/// the ad-hoc FaultyMemory for anything that is not a Memory.
///
/// DMI interaction: while the plan is active (any rule or scripted fault),
/// the interposer declines to forward the inner slave's DMI grants — a
/// direct pointer would bypass read()/write() and blind the injector.
/// set_plan() re-arms at runtime and invalidates every grant already
/// forwarded, so initiators fall back to the interposed path immediately.
class SlaveFaultInterposer : public kern::Module,
                             public bus::BusSlaveIf,
                             public bus::DmiProvider {
 public:
  SlaveFaultInterposer(kern::Object& parent, std::string name,
                       bus::BusSlaveIf& inner, FaultPlan plan);

  void set_ledger(FaultLedger* ledger) noexcept {
    ledger_ = ledger != nullptr ? ledger : &own_ledger_;
  }
  [[nodiscard]] const FaultLedger& ledger() const noexcept { return *ledger_; }

  /// Replaces the fault plan (re-seeding the injector) and invalidates all
  /// forwarded DMI grants. Passing an empty plan disarms the interposer,
  /// which transparently forwards DMI again.
  void set_plan(FaultPlan plan);
  /// True when the current plan can inject (rules or scripted shots).
  [[nodiscard]] bool armed() const noexcept { return armed_; }

  // bus::BusSlaveIf ----------------------------------------------------------
  [[nodiscard]] bus::addr_t get_low_add() const override {
    return inner_->get_low_add();
  }
  [[nodiscard]] bus::addr_t get_high_add() const override {
    return inner_->get_high_add();
  }
  bool read(bus::addr_t add, bus::word* data) override;
  bool write(bus::addr_t add, bus::word* data) override;

  // bus::DmiProvider ----------------------------------------------------------
  /// Forwards the inner slave's grant only while disarmed.
  bool get_dmi(bus::addr_t add, bus::DmiRegion* out) override;

 private:
  FaultInjector injector_;
  FaultLedger own_ledger_;
  FaultLedger* ledger_ = &own_ledger_;
  bus::BusSlaveIf* inner_;
  u64 site_;
  bool armed_ = false;
  bool inner_listener_registered_ = false;
};

}  // namespace adriatic::fault
