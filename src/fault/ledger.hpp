// The fault ledger: a structured, append-only record of every injected and
// observed fault in a simulation. Sites are identified by the same stable
// FNV-1a name hash the scheduler trace uses (kernel/sched_trace.hpp), so
// ledger entries — like scheduler records — compare bit-exactly between two
// runs of the same seeded model. `digest()` folds the whole ledger into one
// comparable value; `to_json()` serialises a summary into campaign reports.
#pragma once

#include <vector>

#include "util/json.hpp"
#include "util/types.hpp"

namespace adriatic::fault {

enum class FaultEventKind : u8 {
  // Injection-side events (recorded by interposers when a plan fires).
  kInjectedError = 1,
  kInjectedDelay = 2,
  kInjectedCorrupt = 3,
  // Observation/recovery-side events (recorded by fault-aware components,
  // e.g. the DRCF's configuration-fetch recovery loop).
  kFetchError = 4,       ///< A configuration fetch returned a bus error.
  kDigestMismatch = 5,   ///< Fetched configuration failed its integrity check.
  kWatchdogAbort = 6,    ///< A fetch exceeded the reconfiguration watchdog.
  kRetry = 7,            ///< A recovery retry was scheduled (arg = attempt).
  kScrub = 8,            ///< A scrub re-fetch was started.
  kFallback = 9,         ///< A call degraded to the fallback context.
  kGaveUp = 10,          ///< Recovery exhausted; the load failed terminally.
  kRecovered = 11,       ///< A load succeeded after >= 1 failed attempt.
  kThrash = 12,          ///< Context-thrash detector fired (arg = switches).
  kMigrateError = 13,    ///< A task-state restore or migration transfer was
                         ///  rejected (arg = drcf::RestoreError / status).
  // Memory-integrity events (recorded by the ECC model and page scrubber,
  // see docs/memory.md).
  kEccUncorrectable = 14,  ///< A read saw an upset beyond ECC correction
                           ///  (arg = flipped bits; 0 = torn-page checksum).
  kEccScrub = 15,          ///< A scrub restored a page from its golden image
                           ///  (addr = first word of the page).
};

/// One past the highest FaultEventKind — keeps per-kind iteration (e.g. the
/// to_json summary) in sync when kinds are added.
inline constexpr u8 kFaultEventKindCount = 16;

[[nodiscard]] const char* to_string(FaultEventKind kind);

struct FaultRecord {
  u64 seq = 0;      ///< Append order, 0-based.
  u64 time_ps = 0;  ///< Simulated time of the event.
  u64 site = 0;     ///< sched_name_hash() of the recording component.
  FaultEventKind kind = FaultEventKind::kInjectedError;
  u64 addr = 0;     ///< Bus address involved (0 when not applicable).
  u64 arg = 0;      ///< Kind-specific detail (status, attempt, context, ...).
};

class FaultLedger {
 public:
  void append(FaultEventKind kind, u64 time_ps, u64 site, u64 addr = 0,
              u64 arg = 0);

  [[nodiscard]] const std::vector<FaultRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] u64 count(FaultEventKind kind) const noexcept;
  /// Total injection-side events (kInjectedError/Delay/Corrupt).
  [[nodiscard]] u64 injected_count() const noexcept;

  /// Order-sensitive splitmix64 fold over every record — the ledger's
  /// counterpart of conformance::TraceDigest.
  [[nodiscard]] u64 digest() const noexcept;

  /// Like digest(), but excluding timestamps and collapsing consecutive
  /// identical records: folds kind/site/addr/arg of each run of equal
  /// records in append order. Comparable across timing modes, where
  /// loose-mode injection timestamps legitimately lag their timed-mode
  /// counterparts and per-call repeat counts (e.g. one kFallback per poll
  /// of a degraded context) vary with poll timing (see
  /// docs/timing_modes.md), while the event-content sequence must not
  /// change.
  [[nodiscard]] u64 functional_digest() const noexcept;

  /// Writes a summary object: record/injection counts, per-kind counts for
  /// kinds that occurred, and the 16-hex-digit ledger digest.
  void to_json(JsonWriter& w) const;

  void clear() noexcept { records_.clear(); }

 private:
  std::vector<FaultRecord> records_;
};

}  // namespace adriatic::fault
