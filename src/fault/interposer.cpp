#include "fault/interposer.hpp"

#include "kernel/sched_trace.hpp"
#include "kernel/simulation.hpp"

namespace adriatic::fault {

namespace {

FaultEventKind injected_kind(FaultKind k) {
  switch (k) {
    case FaultKind::kDelay:
      return FaultEventKind::kInjectedDelay;
    case FaultKind::kCorrupt:
      return FaultEventKind::kInjectedCorrupt;
    case FaultKind::kError:
      break;
  }
  return FaultEventKind::kInjectedError;
}

}  // namespace

// -- BusFaultInterposer ------------------------------------------------------

BusFaultInterposer::BusFaultInterposer(kern::Object& parent, std::string name,
                                       FaultPlan plan)
    : Module(parent, std::move(name)),
      injector_(std::move(plan), kern::sched_name_hash(this->name())),
      site_(kern::sched_name_hash(this->name())) {}

std::optional<FaultAction> BusFaultInterposer::intercept(bus::addr_t add,
                                                         bool is_read) {
  auto action = injector_.decide(sim().now(), add, is_read);
  if (!action.has_value()) return std::nullopt;
  ledger_->append(injected_kind(action->kind), sim().now().picoseconds(),
                  site_, add,
                  action->kind == FaultKind::kCorrupt ? action->corrupt_bits
                                                      : 0);
  if (action->kind == FaultKind::kDelay && !action->delay.is_zero())
    kern::wait(action->delay);
  return action;
}

bus::BusStatus BusFaultInterposer::read(bus::addr_t add, bus::word* data,
                                        u32 priority) {
  const auto action = intercept(add, /*is_read=*/true);
  if (action.has_value() && action->kind == FaultKind::kError)
    return bus::BusStatus::kSlaveError;
  const auto st = down_->read(add, data, priority);
  if (st == bus::BusStatus::kOk && data != nullptr && action.has_value() &&
      action->kind == FaultKind::kCorrupt)
    *data = static_cast<bus::word>(injector_.corrupt(
        static_cast<u32>(*data), action->corrupt_bits));
  return st;
}

bus::BusStatus BusFaultInterposer::write(bus::addr_t add, bus::word* data,
                                         u32 priority) {
  const auto action = intercept(add, /*is_read=*/false);
  if (action.has_value() && action->kind == FaultKind::kError)
    return bus::BusStatus::kSlaveError;
  // Corrupting an outgoing write would mutate the caller's buffer; corrupt
  // the copy instead so injection stays free of caller-visible side effects.
  if (action.has_value() && action->kind == FaultKind::kCorrupt &&
      data != nullptr) {
    bus::word corrupted = static_cast<bus::word>(injector_.corrupt(
        static_cast<u32>(*data), action->corrupt_bits));
    return down_->write(add, &corrupted, priority);
  }
  return down_->write(add, data, priority);
}

bus::BusStatus BusFaultInterposer::burst_read(bus::addr_t add,
                                              std::span<bus::word> data,
                                              u32 priority) {
  const auto action = intercept(add, /*is_read=*/true);
  if (action.has_value() && action->kind == FaultKind::kError)
    return bus::BusStatus::kSlaveError;
  const auto st = down_->burst_read(add, data, priority);
  if (st == bus::BusStatus::kOk && !data.empty() && action.has_value() &&
      action->kind == FaultKind::kCorrupt) {
    const usize idx = static_cast<usize>(injector_.draw_below(data.size()));
    data[idx] = static_cast<bus::word>(injector_.corrupt(
        static_cast<u32>(data[idx]), action->corrupt_bits));
  }
  return st;
}

bus::BusStatus BusFaultInterposer::burst_write(
    bus::addr_t add, std::span<const bus::word> data, u32 priority) {
  const auto action = intercept(add, /*is_read=*/false);
  if (action.has_value() && action->kind == FaultKind::kError)
    return bus::BusStatus::kSlaveError;
  if (action.has_value() && action->kind == FaultKind::kCorrupt &&
      !data.empty()) {
    std::vector<bus::word> corrupted(data.begin(), data.end());
    const usize idx =
        static_cast<usize>(injector_.draw_below(corrupted.size()));
    corrupted[idx] = static_cast<bus::word>(injector_.corrupt(
        static_cast<u32>(corrupted[idx]), action->corrupt_bits));
    return down_->burst_write(add, corrupted, priority);
  }
  return down_->burst_write(add, data, priority);
}

// -- SlaveFaultInterposer ----------------------------------------------------

SlaveFaultInterposer::SlaveFaultInterposer(kern::Object& parent,
                                           std::string name,
                                           bus::BusSlaveIf& inner,
                                           FaultPlan plan)
    : Module(parent, std::move(name)),
      injector_(FaultPlan(plan), kern::sched_name_hash(this->name())),
      inner_(&inner),
      site_(kern::sched_name_hash(this->name())),
      armed_(!plan.empty()) {}

void SlaveFaultInterposer::set_plan(FaultPlan plan) {
  armed_ = !plan.empty();
  injector_ = FaultInjector(std::move(plan), site_);
  // Every grant forwarded so far bypasses read()/write(); revoke them all
  // so the next access comes back through the interposed path.
  invalidate_dmi();
}

bool SlaveFaultInterposer::get_dmi(bus::addr_t add, bus::DmiRegion* out) {
  if (armed_) return false;
  auto* provider = dynamic_cast<bus::DmiProvider*>(inner_);
  if (provider == nullptr) return false;
  if (!inner_listener_registered_) {
    inner_listener_registered_ = true;
    // Chain invalidations: if the inner slave revokes (e.g. a Memory
    // disabling DMI), everyone holding a grant forwarded by us hears it.
    provider->add_dmi_listener([this] { invalidate_dmi(); });
  }
  return provider->get_dmi(add, out);
}

bool SlaveFaultInterposer::read(bus::addr_t add, bus::word* data) {
  auto action = injector_.decide(sim().now(), add, /*is_read=*/true);
  if (action.has_value()) {
    ledger_->append(injected_kind(action->kind), sim().now().picoseconds(),
                    site_, add,
                    action->kind == FaultKind::kCorrupt ? action->corrupt_bits
                                                        : 0);
    if (action->kind == FaultKind::kError) return false;
    if (action->kind == FaultKind::kDelay && !action->delay.is_zero())
      kern::wait(action->delay);
  }
  const bool ok = inner_->read(add, data);
  if (ok && data != nullptr && action.has_value() &&
      action->kind == FaultKind::kCorrupt)
    *data = static_cast<bus::word>(injector_.corrupt(
        static_cast<u32>(*data), action->corrupt_bits));
  return ok;
}

bool SlaveFaultInterposer::write(bus::addr_t add, bus::word* data) {
  auto action = injector_.decide(sim().now(), add, /*is_read=*/false);
  if (action.has_value()) {
    ledger_->append(injected_kind(action->kind), sim().now().picoseconds(),
                    site_, add,
                    action->kind == FaultKind::kCorrupt ? action->corrupt_bits
                                                        : 0);
    if (action->kind == FaultKind::kError) return false;
    if (action->kind == FaultKind::kDelay && !action->delay.is_zero())
      kern::wait(action->delay);
    if (action->kind == FaultKind::kCorrupt && data != nullptr) {
      bus::word corrupted = static_cast<bus::word>(injector_.corrupt(
          static_cast<u32>(*data), action->corrupt_bits));
      return inner_->write(add, &corrupted);
    }
  }
  return inner_->write(add, data);
}

}  // namespace adriatic::fault
