// Deterministic fault plans: a seeded description of *which* bus
// transactions fail and *how*. A plan combines rate-based rules (a fraction
// of matching transactions is hit) with scripted one-shot faults (the first
// N matching transactions at/after a given simulated time), both optionally
// restricted to an address window. The same plan + seed + traffic sequence
// reproduces the same fault sequence bit-exactly in any build mode — which
// is what lets fault campaigns regress against golden scheduler digests.
#pragma once

#include <algorithm>
#include <bit>
#include <optional>
#include <vector>

#include "bus/interfaces.hpp"
#include "kernel/time.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace adriatic::fault {

enum class FaultKind : u8 {
  kDelay = 0,    ///< Stall the transaction by `delay` (timing-only).
  kError = 1,    ///< Fail the transaction (bus::BusStatus::kSlaveError).
  kCorrupt = 2,  ///< Complete it, but flip bits in the payload.
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// Rate-based injection: every transaction matching the window draws once
/// against `rate`.
struct FaultRule {
  double rate = 0.0;  ///< Per-transaction hit probability (0 disables).
  FaultKind kind = FaultKind::kError;
  /// Inject only within [window_low, window_high] (0,0 = everywhere).
  bus::addr_t window_low = 0;
  bus::addr_t window_high = 0;
  /// Active simulated-time window; `until` == zero means no upper bound.
  kern::Time from = kern::Time::zero();
  kern::Time until = kern::Time::zero();
  kern::Time delay = kern::Time::ns(100);  ///< Stall for kDelay hits.
  u32 corrupt_bits = 1;                    ///< Bits flipped for kCorrupt hits.
  bool reads_only = false;                 ///< Skip write transactions.
};

/// Scripted injection: the first `count` matching transactions observed
/// at/after `at` are hit — the deterministic "this exact fetch fails twice"
/// building block used by recovery-policy scenarios.
struct ScriptedFault {
  kern::Time at = kern::Time::zero();
  FaultKind kind = FaultKind::kError;
  bus::addr_t window_low = 0;
  bus::addr_t window_high = 0;
  kern::Time delay = kern::Time::ns(100);
  u32 corrupt_bits = 1;
  u32 count = 1;
};

struct FaultPlan {
  u64 seed = 0xADF0;
  std::vector<FaultRule> rules;
  std::vector<ScriptedFault> scripted;

  [[nodiscard]] bool empty() const noexcept {
    return rules.empty() && scripted.empty();
  }
};

/// What the injector decided for one transaction.
struct FaultAction {
  FaultKind kind = FaultKind::kError;
  kern::Time delay = kern::Time::zero();
  u32 corrupt_bits = 1;
};

/// Flips `nbits` *distinct* bit positions of `value` (a multi-bit upset of
/// the configured weight — never self-cancelling). Draws from `rng` until
/// the mask has the requested popcount; one draw when nbits == 1, so
/// single-bit users keep their historical random streams.
[[nodiscard]] inline u32 flip_distinct_bits(u32 value, u32 nbits,
                                            Xoshiro256& rng) {
  nbits = std::min<u32>(std::max<u32>(nbits, 1), 32);
  u32 mask = 0;
  while (static_cast<u32>(std::popcount(mask)) < nbits)
    mask |= 1u << rng.next_below(32);
  return value ^ mask;
}

/// The stateful, deterministic decision engine for one injection site. The
/// RNG stream is seeded from plan.seed XOR the site id, so two interposers
/// sharing a plan still draw independent (but reproducible) streams.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, u64 site_id)
      : plan_(std::move(plan)),
        remaining_(plan_.scripted.size()),
        rng_(plan_.seed ^ site_id) {
    for (usize i = 0; i < plan_.scripted.size(); ++i)
      remaining_[i] = plan_.scripted[i].count;
  }

  /// Decides the fate of one transaction. Scripted faults take precedence
  /// (in plan order); then every matching rate rule draws once.
  [[nodiscard]] std::optional<FaultAction> decide(kern::Time now,
                                                  bus::addr_t addr,
                                                  bool is_read) {
    for (usize i = 0; i < plan_.scripted.size(); ++i) {
      const ScriptedFault& f = plan_.scripted[i];
      if (remaining_[i] == 0 || now < f.at) continue;
      if (!in_window(addr, f.window_low, f.window_high)) continue;
      --remaining_[i];
      return FaultAction{f.kind, f.delay, f.corrupt_bits};
    }
    for (const FaultRule& r : plan_.rules) {
      if (r.rate <= 0.0) continue;
      if (r.reads_only && !is_read) continue;
      if (!in_window(addr, r.window_low, r.window_high)) continue;
      if (now < r.from) continue;
      if (!r.until.is_zero() && now > r.until) continue;
      if (rng_.next_bool(r.rate))
        return FaultAction{r.kind, r.delay, r.corrupt_bits};
    }
    return std::nullopt;
  }

  /// Deterministic auxiliary draw (e.g. which burst word to corrupt).
  [[nodiscard]] u64 draw_below(u64 bound) { return rng_.next_below(bound); }

  /// Corrupts `value` with `nbits` distinct flipped bits from this site's
  /// random stream.
  [[nodiscard]] u32 corrupt(u32 value, u32 nbits) {
    return flip_distinct_bits(value, nbits, rng_);
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  [[nodiscard]] static bool in_window(bus::addr_t a, bus::addr_t lo,
                                      bus::addr_t hi) noexcept {
    if (lo == 0 && hi == 0) return true;
    return a >= lo && a <= hi;
  }

  FaultPlan plan_;
  std::vector<u32> remaining_;  ///< Shots left per scripted entry.
  Xoshiro256 rng_;
};

}  // namespace adriatic::fault
