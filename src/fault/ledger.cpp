#include "fault/ledger.hpp"

#include "fault/plan.hpp"
#include "util/strings.hpp"

namespace adriatic::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kError:
      return "error";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  return "?";
}

const char* to_string(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kInjectedError:
      return "injected_error";
    case FaultEventKind::kInjectedDelay:
      return "injected_delay";
    case FaultEventKind::kInjectedCorrupt:
      return "injected_corrupt";
    case FaultEventKind::kFetchError:
      return "fetch_error";
    case FaultEventKind::kDigestMismatch:
      return "digest_mismatch";
    case FaultEventKind::kWatchdogAbort:
      return "watchdog_abort";
    case FaultEventKind::kRetry:
      return "retry";
    case FaultEventKind::kScrub:
      return "scrub";
    case FaultEventKind::kFallback:
      return "fallback";
    case FaultEventKind::kGaveUp:
      return "gave_up";
    case FaultEventKind::kRecovered:
      return "recovered";
    case FaultEventKind::kThrash:
      return "thrash";
    case FaultEventKind::kMigrateError:
      return "migrate_error";
    case FaultEventKind::kEccUncorrectable:
      return "ecc_uncorrectable";
    case FaultEventKind::kEccScrub:
      return "ecc_scrub";
  }
  return "?";
}

void FaultLedger::append(FaultEventKind kind, u64 time_ps, u64 site, u64 addr,
                         u64 arg) {
  FaultRecord r;
  r.seq = records_.size();
  r.time_ps = time_ps;
  r.site = site;
  r.kind = kind;
  r.addr = addr;
  r.arg = arg;
  records_.push_back(r);
}

u64 FaultLedger::count(FaultEventKind kind) const noexcept {
  u64 n = 0;
  for (const FaultRecord& r : records_)
    if (r.kind == kind) ++n;
  return n;
}

u64 FaultLedger::injected_count() const noexcept {
  u64 n = 0;
  for (const FaultRecord& r : records_)
    if (r.kind == FaultEventKind::kInjectedError ||
        r.kind == FaultEventKind::kInjectedDelay ||
        r.kind == FaultEventKind::kInjectedCorrupt)
      ++n;
  return n;
}

namespace {
// splitmix64 avalanche, same shape as conformance::TraceDigest::mix.
constexpr u64 mix(u64 z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

u64 FaultLedger::digest() const noexcept {
  u64 h = 0x9e3779b97f4a7c15ULL;
  for (const FaultRecord& r : records_) {
    h = mix(h ^ static_cast<u64>(r.kind));
    h = mix(h ^ r.time_ps);
    h = mix(h ^ r.site);
    h = mix(h ^ r.addr);
    h = mix(h ^ r.arg);
  }
  return h;
}

u64 FaultLedger::functional_digest() const noexcept {
  u64 h = 0x9e3779b97f4a7c15ULL;
  const FaultRecord* prev = nullptr;
  for (const FaultRecord& r : records_) {
    // Consecutive identical records collapse into one: per-call events like
    // kFallback repeat once per access, and the access count of a polling
    // caller is a timing artifact, not a functional outcome. Run-length is
    // the only information discarded — any change in kind, site, address or
    // payload still lands in the fold.
    if (prev != nullptr && prev->kind == r.kind && prev->site == r.site &&
        prev->addr == r.addr && prev->arg == r.arg)
      continue;
    prev = &r;
    h = mix(h ^ static_cast<u64>(r.kind));
    h = mix(h ^ r.site);
    h = mix(h ^ r.addr);
    h = mix(h ^ r.arg);
  }
  return h;
}

void FaultLedger::to_json(JsonWriter& w) const {
  w.begin_object();
  w.field("events", static_cast<u64>(records_.size()));
  w.field("injected", injected_count());
  // Per-kind counts, stable order, only kinds that occurred.
  for (u8 k = 1; k < kFaultEventKindCount; ++k) {
    const auto kind = static_cast<FaultEventKind>(k);
    const u64 n = count(kind);
    if (n > 0) w.field(to_string(kind), n);
  }
  w.field("digest", strfmt("%016llx",
                           static_cast<unsigned long long>(digest())));
  w.end();
}

}  // namespace adriatic::fault
