#include "morphosys/rc_array.hpp"

#include <algorithm>
#include <cstdlib>

namespace adriatic::morphosys {

namespace {
[[nodiscard]] i16 sat16(i32 v) {
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return static_cast<i16>(v);
}
}  // namespace

void RcArray::reset() {
  cells_.fill(Cell{});
  cycles_ = 0;
  active_ops_ = 0;
}

i16 RcArray::operand(const Cell& c, MuxSel sel, i16 imm, usize row, usize col,
                     const FrameBuffer& fb, usize fb_base, usize step_index,
                     const std::array<i16, kArrayCells>& prev) const {
  auto prev_of = [&](usize r, usize cc) { return prev[r * kArrayDim + cc]; };
  switch (sel) {
    case MuxSel::kReg0:
      return c.regs[0];
    case MuxSel::kReg1:
      return c.regs[1];
    case MuxSel::kReg2:
      return c.regs[2];
    case MuxSel::kReg3:
      return c.regs[3];
    case MuxSel::kImm:
      return imm;
    // Layer 1: 2D mesh, nearest-neighbour, torus wrap at the edges.
    case MuxSel::kNorth:
      return prev_of((row + kArrayDim - 1) % kArrayDim, col);
    case MuxSel::kSouth:
      return prev_of((row + 1) % kArrayDim, col);
    case MuxSel::kEast:
      return prev_of(row, (col + 1) % kArrayDim);
    case MuxSel::kWest:
      return prev_of(row, (col + kArrayDim - 1) % kArrayDim);
    // Layer 2: complete row/column connectivity within the 4x4 quadrant.
    case MuxSel::kRowQuad: {
      const usize quad_base = (col / kQuadDim) * kQuadDim;
      const usize lane = quad_base + (static_cast<usize>(imm) & (kQuadDim - 1));
      return prev_of(row, lane);
    }
    case MuxSel::kColQuad: {
      const usize quad_base = (row / kQuadDim) * kQuadDim;
      const usize lane = quad_base + (static_cast<usize>(imm) & (kQuadDim - 1));
      return prev_of(lane, col);
    }
    // Layer 3: same-position cell in the horizontally adjacent quadrant.
    case MuxSel::kXQuad: {
      const usize other_col = (col + kQuadDim) % kArrayDim;
      return prev_of(row, other_col);
    }
    case MuxSel::kFrameBuf:
      return fb.read(fb_base + step_index * kArrayCells +
                     row * kArrayDim + col);
  }
  return 0;
}

void RcArray::step(const Context& ctx, BroadcastMode mode, FrameBuffer& fb,
                   usize fb_base, usize step_index) {
  // Interconnect reads see the previous cycle's outputs (registered).
  std::array<i16, kArrayCells> prev{};
  for (usize i = 0; i < kArrayCells; ++i) prev[i] = cells_[i].output;

  for (usize row = 0; row < kArrayDim; ++row) {
    for (usize col = 0; col < kArrayDim; ++col) {
      const ContextWord& w =
          mode == BroadcastMode::kRow ? ctx.rows[row] : ctx.rows[col];
      Cell& c = cells_[row * kArrayDim + col];
      if (w.op == RcOp::kNop) continue;
      const i16 a = operand(c, w.src_a, w.imm, row, col, fb, fb_base,
                            step_index, prev);
      const i16 b = operand(c, w.src_b, w.imm, row, col, fb, fb_base,
                            step_index, prev);
      i16 result = 0;
      switch (w.op) {
        case RcOp::kNop:
          break;
        case RcOp::kAdd:
          result = sat16(static_cast<i32>(a) + b);
          break;
        case RcOp::kSub:
          result = sat16(static_cast<i32>(a) - b);
          break;
        case RcOp::kMul:
          result = sat16(static_cast<i32>(a) * b);
          break;
        case RcOp::kMac:
          result = sat16(static_cast<i32>(c.regs[3]) +
                         static_cast<i32>(a) * b);
          break;
        case RcOp::kAnd:
          result = static_cast<i16>(a & b);
          break;
        case RcOp::kOr:
          result = static_cast<i16>(a | b);
          break;
        case RcOp::kXor:
          result = static_cast<i16>(a ^ b);
          break;
        case RcOp::kShl:
          result = static_cast<i16>(
              static_cast<u16>(a) << (static_cast<u16>(b) & 15));
          break;
        case RcOp::kShr:
          result = static_cast<i16>(a >> (static_cast<u16>(b) & 15));
          break;
        case RcOp::kMin:
          result = std::min(a, b);
          break;
        case RcOp::kMax:
          result = std::max(a, b);
          break;
        case RcOp::kAbsDiff:
          result = sat16(std::abs(static_cast<i32>(a) - b));
          break;
        case RcOp::kMov:
          result = a;
          break;
      }
      c.regs[w.dst_reg & 3] = result;
      c.output = result;
      if (w.write_fb)
        fb.write(fb_base + step_index * kArrayCells + row * kArrayDim + col,
                 result);
      ++active_ops_;
    }
  }
  ++cycles_;
}

}  // namespace adriatic::morphosys
