// Umbrella header for the MorphoSys-class coarse-grained array substrate.
#pragma once

#include "morphosys/assembler.hpp"
#include "morphosys/isa.hpp"
#include "morphosys/kernels.hpp"
#include "morphosys/machine.hpp"
#include "morphosys/rc_array.hpp"
