// MorphoSys-class machine ISA (paper Sec. 3c): a TinyRISC-style control
// processor whose instruction set is augmented with DMA and RC-array
// instructions, plus the context-word format steering the 8x8 array.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace adriatic::morphosys {

// --- RC array context words -------------------------------------------------

/// Where an RC operand comes from (the three-layer interconnect: mesh
/// neighbours, intra-quadrant row/column lines, plus local state).
enum class MuxSel : u8 {
  kReg0,
  kReg1,
  kReg2,
  kReg3,
  kImm,       ///< Context immediate.
  kNorth,     ///< Mesh layer 1: nearest neighbours (previous cycle outputs).
  kSouth,
  kEast,
  kWest,
  kRowQuad,   ///< Layer 2: output of cell `imm` in this row's quadrant.
  kColQuad,   ///< Layer 2: output of cell `imm` in this column's quadrant.
  kXQuad,     ///< Layer 3: output of the same-position cell in the next
              ///< quadrant (inter-quadrant express lane).
  kFrameBuf,  ///< Operand streamed from the frame buffer.
};

enum class RcOp : u8 {
  kNop,
  kAdd,
  kSub,
  kMul,
  kMac,    ///< acc += a*b (accumulator = reg3 by convention).
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,    ///< Arithmetic shift right.
  kMin,
  kMax,
  kAbsDiff,
  kMov,
};

/// One context word: the operation every RC in a broadcast group executes.
struct ContextWord {
  RcOp op = RcOp::kNop;
  MuxSel src_a = MuxSel::kReg0;
  MuxSel src_b = MuxSel::kReg1;
  u8 dst_reg = 0;        ///< Destination register (0-3); output always updated.
  i16 imm = 0;           ///< Immediate / quadrant lane select.
  bool write_fb = false; ///< Also write the result to the frame buffer.
};

/// A full context: one word per broadcast group (8 rows or 8 columns).
struct Context {
  std::array<ContextWord, 8> rows{};
};

/// SIMD broadcast mode: all cells in a row share a word, or all in a column.
enum class BroadcastMode : u8 { kRow, kColumn };

// --- TinyRISC instructions ---------------------------------------------------

enum class Opcode : u8 {
  kNop,
  kHalt,
  kAddi,   ///< rd = rs + imm
  kAdd,    ///< rd = rs + rt
  kSub,
  kMul,
  kLdw,    ///< rd = mem[rs + imm]
  kStw,    ///< mem[rs + imm] = rt
  kBeq,    ///< if (rs == rt) pc = target
  kBne,
  kJmp,
  // MorphoSys-specific instructions (paper: "TinyRISC ISA is augmented with
  // specific instructions for controlling DMA and RA").
  kDmaLd,  ///< DMA: main memory[rs] -> frame buffer[rt], imm words.
  kDmaSt,  ///< DMA: frame buffer[rs] -> main memory[rt], imm words.
  kDmaCl,  ///< DMA: load imm contexts into plane rs from main memory[rt].
  kRaMode, ///< Set broadcast mode (imm: 0 row, 1 column).
  kRaExec, ///< Execute context rt of plane rs for imm array cycles.
  kWaitDma,///< Stall until the DMA engine is idle.
};

struct Instruction {
  Opcode op = Opcode::kNop;
  u8 rd = 0;
  u8 rs = 0;
  u8 rt = 0;
  i32 imm = 0;
  u32 target = 0;  ///< Branch/jump destination (instruction index).
};

using Program = std::vector<Instruction>;

}  // namespace adriatic::morphosys
