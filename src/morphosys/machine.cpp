#include "morphosys/machine.hpp"

#include <stdexcept>

namespace adriatic::morphosys {

namespace {

// One packed main-memory word per context row:
//   [15:0] imm, [20:16] op, [24:21] src_a, [28:25] src_b, [30:29] dst,
//   [31] write_fb.
u32 pack_word(const ContextWord& w) {
  return (static_cast<u32>(static_cast<u16>(w.imm))) |
         (static_cast<u32>(w.op) & 0x1F) << 16 |
         (static_cast<u32>(w.src_a) & 0xF) << 21 |
         (static_cast<u32>(w.src_b) & 0xF) << 25 |
         (static_cast<u32>(w.dst_reg) & 0x3) << 29 |
         (w.write_fb ? 1u : 0u) << 31;
}

ContextWord unpack_word(u32 v) {
  ContextWord w;
  w.imm = static_cast<i16>(v & 0xFFFF);
  w.op = static_cast<RcOp>((v >> 16) & 0x1F);
  w.src_a = static_cast<MuxSel>((v >> 21) & 0xF);
  w.src_b = static_cast<MuxSel>((v >> 25) & 0xF);
  w.dst_reg = static_cast<u8>((v >> 29) & 0x3);
  w.write_fb = ((v >> 31) & 1) != 0;
  return w;
}

}  // namespace

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg),
      mem_(cfg.main_memory_words, 0),
      fb_(cfg.frame_buffer_words) {}

void Machine::mem_write(usize addr, i32 v) { mem_.at(addr) = v; }

i32 Machine::mem_read(usize addr) const { return mem_.at(addr); }

void Machine::mem_load(usize addr, std::span<const i32> data) {
  if (addr + data.size() > mem_.size())
    throw std::out_of_range("Machine: mem_load outside memory");
  for (usize i = 0; i < data.size(); ++i) mem_[addr + i] = data[i];
}

void Machine::store_context_image(usize addr, const Context& c) {
  if (addr + 8 > mem_.size())
    throw std::out_of_range("Machine: context image outside memory");
  for (usize r = 0; r < 8; ++r)
    mem_[addr + r] = static_cast<i32>(pack_word(c.rows[r]));
}

Context Machine::decode_context_image(usize addr) const {
  Context c;
  for (usize r = 0; r < 8; ++r)
    c.rows[r] = unpack_word(static_cast<u32>(mem_.at(addr + r)));
  return c;
}

void Machine::start_dma(DmaJob job) {
  const usize payload_words = job.kind == DmaJob::Kind::kContexts
                                  ? job.words * cfg_.context_image_words
                                  : job.words;
  const u64 duration =
      cfg_.mem_latency_cycles +
      ceil_div<u64>(payload_words, std::max<u32>(1, cfg_.dma_words_per_cycle));
  job.finish_cycle = stats_.cycles + duration;
  dma_ = job;
}

void Machine::tick_dma() {
  if (!dma_busy()) return;
  ++stats_.dma_busy_cycles;
  if (stats_.cycles < dma_.finish_cycle) return;
  // Complete the job: perform the functional data movement.
  switch (dma_.kind) {
    case DmaJob::Kind::kLoad:
      for (usize i = 0; i < dma_.words; ++i)
        fb_.write(dma_.fb_addr + i,
                  static_cast<i16>(mem_.at(dma_.mem_addr + i)));
      break;
    case DmaJob::Kind::kStore:
      for (usize i = 0; i < dma_.words; ++i)
        mem_.at(dma_.mem_addr + i) = fb_.read(dma_.fb_addr + i);
      break;
    case DmaJob::Kind::kContexts:
      for (usize i = 0; i < dma_.words; ++i) {
        ctx_mem_.set(dma_.plane, dma_.fb_addr + i,
                     decode_context_image(dma_.mem_addr +
                                          i * cfg_.context_image_words));
        ++stats_.contexts_loaded;
      }
      break;
    case DmaJob::Kind::kNone:
      break;
  }
  dma_.kind = DmaJob::Kind::kNone;
}

bool Machine::run(const Program& program, u64 max_cycles) {
  regs_.fill(0);
  u32 pc = 0;
  const u64 limit = stats_.cycles + max_cycles;

  while (stats_.cycles < limit) {
    if (pc >= program.size()) return false;
    const Instruction& ins = program[pc];
    ++pc;
    ++stats_.cycles;
    ++stats_.risc_instructions;
    tick_dma();

    auto reg_u = [&](u8 r) { return static_cast<usize>(regs_.at(r)); };

    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        return true;
      case Opcode::kAddi:
        regs_.at(ins.rd) = regs_.at(ins.rs) + ins.imm;
        break;
      case Opcode::kAdd:
        regs_.at(ins.rd) = regs_.at(ins.rs) + regs_.at(ins.rt);
        break;
      case Opcode::kSub:
        regs_.at(ins.rd) = regs_.at(ins.rs) - regs_.at(ins.rt);
        break;
      case Opcode::kMul:
        regs_.at(ins.rd) = regs_.at(ins.rs) * regs_.at(ins.rt);
        break;
      case Opcode::kLdw:
        stats_.cycles += cfg_.mem_latency_cycles;
        regs_.at(ins.rd) =
            mem_.at(reg_u(ins.rs) + static_cast<usize>(ins.imm));
        break;
      case Opcode::kStw:
        stats_.cycles += cfg_.mem_latency_cycles;
        mem_.at(reg_u(ins.rs) + static_cast<usize>(ins.imm)) =
            regs_.at(ins.rt);
        break;
      case Opcode::kBeq:
        if (regs_.at(ins.rs) == regs_.at(ins.rt)) pc = ins.target;
        break;
      case Opcode::kBne:
        if (regs_.at(ins.rs) != regs_.at(ins.rt)) pc = ins.target;
        break;
      case Opcode::kJmp:
        pc = ins.target;
        break;

      case Opcode::kDmaLd:
      case Opcode::kDmaSt:
      case Opcode::kDmaCl: {
        while (dma_busy()) {
          ++stats_.cycles;
          ++stats_.dma_wait_cycles;
          tick_dma();
        }
        DmaJob job;
        if (ins.op == Opcode::kDmaLd) {
          job.kind = DmaJob::Kind::kLoad;
          job.mem_addr = reg_u(ins.rs);
          job.fb_addr = reg_u(ins.rt);
          job.words = static_cast<usize>(ins.imm);
        } else if (ins.op == Opcode::kDmaSt) {
          job.kind = DmaJob::Kind::kStore;
          job.fb_addr = reg_u(ins.rs);
          job.mem_addr = reg_u(ins.rt);
          job.words = static_cast<usize>(ins.imm);
        } else {
          job.kind = DmaJob::Kind::kContexts;
          job.plane = ins.rd & 1;
          job.fb_addr = 0;  // contexts land at indices [0, count)
          job.mem_addr = reg_u(ins.rt);
          job.words = static_cast<usize>(ins.imm);
          if (job.words > kContextsPerPlane)
            throw std::invalid_argument("DMACL: more than 16 contexts");
        }
        start_dma(job);
        break;
      }

      case Opcode::kRaMode:
        mode_ = ins.imm == 0 ? BroadcastMode::kRow : BroadcastMode::kColumn;
        break;

      case Opcode::kRaExec: {
        const usize plane = ins.rs & 1;
        const usize ctx_index = ins.rt & (kContextsPerPlane - 1);
        // Paper property: executing from one plane overlaps reloading the
        // other; executing from the plane under reload must stall.
        while (dma_busy() && dma_.kind == DmaJob::Kind::kContexts &&
               dma_.plane == plane) {
          ++stats_.cycles;
          ++stats_.ra_stall_cycles;
          tick_dma();
        }
        const Context& ctx = ctx_mem_.at(plane, ctx_index);
        const usize fb_base = reg_u(ins.rd);
        for (i32 i = 0; i < ins.imm; ++i) {
          ++stats_.cycles;
          ++stats_.ra_cycles;
          tick_dma();
          if (dma_busy()) ++stats_.overlapped_cycles;
          array_.step(ctx, mode_, fb_, fb_base, static_cast<usize>(i));
        }
        break;
      }

      case Opcode::kWaitDma:
        while (dma_busy()) {
          ++stats_.cycles;
          ++stats_.dma_wait_cycles;
          tick_dma();
        }
        break;
    }
  }
  return false;  // cycle budget exhausted
}

double Machine::array_utilization() const {
  const u64 denom = array_.cycles_executed() * kArrayCells;
  return denom == 0 ? 0.0
                    : static_cast<double>(array_.active_cell_ops()) /
                          static_cast<double>(denom);
}

}  // namespace adriatic::morphosys
