// The MorphoSys-class machine: TinyRISC control processor, 8x8 RC array,
// double-plane context memory, frame buffer, DMA controller and main memory,
// with cycle accounting that exposes the architecture's headline property —
// context reload into one plane overlaps execution from the other.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "morphosys/isa.hpp"
#include "morphosys/rc_array.hpp"
#include "util/types.hpp"

namespace adriatic::morphosys {

constexpr usize kContextPlanes = 2;
constexpr usize kContextsPerPlane = 16;

/// Context memory: two planes of 16 contexts; the array executes from one
/// plane while the DMA reloads the other (paper: "While the RC array is
/// executing one of the 16 contexts, the other 16 contexts can be reloaded").
class ContextMemory {
 public:
  [[nodiscard]] const Context& at(usize plane, usize index) const {
    return planes_.at(plane).at(index);
  }
  void set(usize plane, usize index, const Context& c) {
    planes_.at(plane).at(index) = c;
  }

 private:
  std::array<std::array<Context, kContextsPerPlane>, kContextPlanes> planes_{};
};

struct MachineConfig {
  usize main_memory_words = 1u << 16;
  usize frame_buffer_words = 4096;
  u32 mem_latency_cycles = 4;    ///< Main-memory word access.
  u32 dma_words_per_cycle = 1;   ///< DMA streaming throughput.
  /// Words of main memory encoding one context (8 context words, packed).
  u32 context_image_words = 8;
};

struct MachineStats {
  u64 cycles = 0;             ///< Total machine cycles.
  u64 risc_instructions = 0;
  u64 ra_cycles = 0;          ///< Cycles with the array executing.
  u64 ra_stall_cycles = 0;    ///< RAEXEC blocked on a same-plane DMA load.
  u64 dma_busy_cycles = 0;
  u64 dma_wait_cycles = 0;    ///< WAITDMA stalls.
  u64 overlapped_cycles = 0;  ///< Array executing while DMA busy.
  u64 contexts_loaded = 0;
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg = {});

  // Main-memory backdoor (program/data loading and result checks).
  void mem_write(usize addr, i32 v);
  [[nodiscard]] i32 mem_read(usize addr) const;
  void mem_load(usize addr, std::span<const i32> data);

  /// Encodes a context into its main-memory image at `addr` (what DMACL
  /// fetches). Layout: one packed word per context row.
  void store_context_image(usize addr, const Context& c);

  /// Runs `program` until HALT or `max_cycles`. Returns true on clean halt.
  bool run(const Program& program, u64 max_cycles = 1'000'000);

  [[nodiscard]] const MachineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const RcArray& array() const noexcept { return array_; }
  [[nodiscard]] FrameBuffer& frame_buffer() noexcept { return fb_; }
  [[nodiscard]] i32 reg(usize i) const { return regs_.at(i); }
  [[nodiscard]] const ContextMemory& context_memory() const noexcept {
    return ctx_mem_;
  }
  /// Array utilization: non-NOP cell-ops / (array cycles * 64 cells).
  [[nodiscard]] double array_utilization() const;

 private:
  struct DmaJob {
    enum class Kind : u8 { kNone, kLoad, kStore, kContexts } kind = Kind::kNone;
    usize mem_addr = 0;
    usize fb_addr = 0;      ///< Or context index base for kContexts.
    usize plane = 0;
    usize words = 0;        ///< Remaining words (or contexts for kContexts).
    u64 finish_cycle = 0;
  };

  void start_dma(DmaJob job);
  void tick_dma();
  [[nodiscard]] bool dma_busy() const {
    return dma_.kind != DmaJob::Kind::kNone;
  }
  [[nodiscard]] Context decode_context_image(usize addr) const;

  MachineConfig cfg_;
  std::vector<i32> mem_;
  FrameBuffer fb_;
  RcArray array_;
  ContextMemory ctx_mem_;
  std::array<i32, 16> regs_{};
  BroadcastMode mode_ = BroadcastMode::kRow;
  DmaJob dma_;
  MachineStats stats_;
};

}  // namespace adriatic::morphosys
