#include "morphosys/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <stdexcept>
#include <vector>

#include "util/strings.hpp"

namespace adriatic::morphosys {

namespace {

struct Token {
  std::string text;
};

[[noreturn]] void fail(usize line, const std::string& msg) {
  throw std::invalid_argument(strfmt("asm line %zu: %s", line, msg.c_str()));
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

std::string strip(const std::string& s) {
  usize b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> tokenize_operands(const std::string& s) {
  std::vector<std::string> out;
  for (auto& part : split(s, ',')) {
    const std::string t = strip(part);
    if (!t.empty()) out.push_back(t);
  }
  return out;
}

u8 parse_reg(const std::string& t, usize line) {
  if (t.size() < 2 || (t[0] != 'r' && t[0] != 'R'))
    fail(line, "expected register, got '" + t + "'");
  const int n = std::atoi(t.c_str() + 1);
  if (n < 0 || n > 15) fail(line, "register out of range: " + t);
  return static_cast<u8>(n);
}

i32 parse_imm(const std::string& t, usize line) {
  char* end = nullptr;
  const long v = std::strtol(t.c_str(), &end, 0);
  if (end == t.c_str() || *end != '\0')
    fail(line, "expected immediate, got '" + t + "'");
  return static_cast<i32>(v);
}

struct PendingBranch {
  usize instr_index;
  std::string label;
  usize line;
};

}  // namespace

Program assemble(const std::string& source) {
  Program prog;
  std::map<std::string, u32> labels;
  std::vector<PendingBranch> fixups;

  const auto lines = split(source, '\n');
  for (usize ln = 0; ln < lines.size(); ++ln) {
    std::string line = lines[ln];
    // Strip comments.
    for (const char c : {';', '#'}) {
      const auto pos = line.find(c);
      if (pos != std::string::npos) line = line.substr(0, pos);
    }
    line = strip(line);
    if (line.empty()) continue;

    // Label?
    if (line.back() == ':') {
      const std::string label = strip(line.substr(0, line.size() - 1));
      if (label.empty()) fail(ln + 1, "empty label");
      if (!labels.emplace(label, static_cast<u32>(prog.size())).second)
        fail(ln + 1, "duplicate label '" + label + "'");
      continue;
    }

    // Mnemonic + operands.
    const auto space = line.find_first_of(" \t");
    const std::string mnem = upper(space == std::string::npos
                                       ? line
                                       : line.substr(0, space));
    const auto ops = space == std::string::npos
                         ? std::vector<std::string>{}
                         : tokenize_operands(line.substr(space + 1));
    auto need = [&](usize n) {
      if (ops.size() != n)
        fail(ln + 1, strfmt("%s expects %zu operands, got %zu", mnem.c_str(),
                            n, ops.size()));
    };

    Instruction ins;
    if (mnem == "NOP") {
      need(0);
      ins.op = Opcode::kNop;
    } else if (mnem == "HALT") {
      need(0);
      ins.op = Opcode::kHalt;
    } else if (mnem == "ADDI") {
      need(3);
      ins.op = Opcode::kAddi;
      ins.rd = parse_reg(ops[0], ln + 1);
      ins.rs = parse_reg(ops[1], ln + 1);
      ins.imm = parse_imm(ops[2], ln + 1);
    } else if (mnem == "ADD" || mnem == "SUB" || mnem == "MUL") {
      need(3);
      ins.op = mnem == "ADD"   ? Opcode::kAdd
               : mnem == "SUB" ? Opcode::kSub
                               : Opcode::kMul;
      ins.rd = parse_reg(ops[0], ln + 1);
      ins.rs = parse_reg(ops[1], ln + 1);
      ins.rt = parse_reg(ops[2], ln + 1);
    } else if (mnem == "LDW") {
      need(3);
      ins.op = Opcode::kLdw;
      ins.rd = parse_reg(ops[0], ln + 1);
      ins.rs = parse_reg(ops[1], ln + 1);
      ins.imm = parse_imm(ops[2], ln + 1);
    } else if (mnem == "STW") {
      need(3);
      ins.op = Opcode::kStw;
      ins.rs = parse_reg(ops[0], ln + 1);
      ins.imm = parse_imm(ops[1], ln + 1);
      ins.rt = parse_reg(ops[2], ln + 1);
    } else if (mnem == "BEQ" || mnem == "BNE") {
      need(3);
      ins.op = mnem == "BEQ" ? Opcode::kBeq : Opcode::kBne;
      ins.rs = parse_reg(ops[0], ln + 1);
      ins.rt = parse_reg(ops[1], ln + 1);
      fixups.push_back({prog.size(), ops[2], ln + 1});
    } else if (mnem == "JMP") {
      need(1);
      ins.op = Opcode::kJmp;
      fixups.push_back({prog.size(), ops[0], ln + 1});
    } else if (mnem == "DMALD") {
      need(3);
      ins.op = Opcode::kDmaLd;
      ins.rs = parse_reg(ops[0], ln + 1);  // main memory address register
      ins.rt = parse_reg(ops[1], ln + 1);  // frame buffer address register
      ins.imm = parse_imm(ops[2], ln + 1);
    } else if (mnem == "DMAST") {
      need(3);
      ins.op = Opcode::kDmaSt;
      ins.rs = parse_reg(ops[0], ln + 1);  // frame buffer address register
      ins.rt = parse_reg(ops[1], ln + 1);  // main memory address register
      ins.imm = parse_imm(ops[2], ln + 1);
    } else if (mnem == "DMACL") {
      need(3);
      ins.op = Opcode::kDmaCl;
      ins.rd = static_cast<u8>(parse_imm(ops[0], ln + 1) & 1);  // plane
      ins.rt = parse_reg(ops[1], ln + 1);  // memory address register
      ins.imm = parse_imm(ops[2], ln + 1); // context count
    } else if (mnem == "RAMODE") {
      need(1);
      ins.op = Opcode::kRaMode;
      const std::string m = upper(ops[0]);
      if (m == "ROW") {
        ins.imm = 0;
      } else if (m == "COL" || m == "COLUMN") {
        ins.imm = 1;
      } else {
        fail(ln + 1, "RAMODE expects row|col");
      }
    } else if (mnem == "RAEXEC") {
      need(4);
      ins.op = Opcode::kRaExec;
      ins.rs = static_cast<u8>(parse_imm(ops[0], ln + 1) & 1);  // plane
      ins.rt = static_cast<u8>(parse_imm(ops[1], ln + 1) & 15); // context
      ins.rd = parse_reg(ops[2], ln + 1);  // frame-buffer base register
      ins.imm = parse_imm(ops[3], ln + 1); // cycles
    } else if (mnem == "WAITDMA") {
      need(0);
      ins.op = Opcode::kWaitDma;
    } else {
      fail(ln + 1, "unknown mnemonic '" + mnem + "'");
    }
    prog.push_back(ins);
  }

  for (const auto& fx : fixups) {
    const auto it = labels.find(fx.label);
    if (it == labels.end()) fail(fx.line, "unknown label '" + fx.label + "'");
    prog[fx.instr_index].target = it->second;
  }
  return prog;
}

}  // namespace adriatic::morphosys
