// The 8x8 reconfigurable-cell array with its three-layer interconnect
// (paper Sec. 3c): mesh neighbours, intra-quadrant row/column lines, and
// inter-quadrant lanes. Each RC has an ALU/multiplier, shifter, input muxes
// and a four-entry 16-bit register file; execution is SIMD from a broadcast
// context word.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "morphosys/isa.hpp"
#include "util/types.hpp"

namespace adriatic::morphosys {

constexpr usize kArrayDim = 8;
constexpr usize kArrayCells = kArrayDim * kArrayDim;
constexpr usize kQuadDim = 4;

class FrameBuffer {
 public:
  explicit FrameBuffer(usize words = 2048) : data_(words, 0) {}

  [[nodiscard]] i16 read(usize addr) const {
    return addr < data_.size() ? data_[addr] : 0;
  }
  void write(usize addr, i16 v) {
    if (addr < data_.size()) data_[addr] = v;
  }
  [[nodiscard]] usize size() const noexcept { return data_.size(); }

 private:
  std::vector<i16> data_;
};

class RcArray {
 public:
  struct Cell {
    std::array<i16, 4> regs{};
    i16 output = 0;
  };

  /// Executes one SIMD array cycle under `ctx`. Frame-buffer operands are
  /// streamed from `fb_base + cell linear index`; results with write_fb set
  /// are stored to the same layout. `step_index` is added to the streaming
  /// base so consecutive cycles walk the buffer.
  void step(const Context& ctx, BroadcastMode mode, FrameBuffer& fb,
            usize fb_base, usize step_index);

  [[nodiscard]] const Cell& cell(usize row, usize col) const {
    return cells_[row * kArrayDim + col];
  }
  [[nodiscard]] Cell& cell(usize row, usize col) {
    return cells_[row * kArrayDim + col];
  }

  void reset();

  [[nodiscard]] u64 cycles_executed() const noexcept { return cycles_; }
  /// Non-NOP cell-operations executed (utilization numerator).
  [[nodiscard]] u64 active_cell_ops() const noexcept { return active_ops_; }

 private:
  [[nodiscard]] i16 operand(const Cell& c, MuxSel sel, i16 imm, usize row,
                            usize col, const FrameBuffer& fb, usize fb_base,
                            usize step_index,
                            const std::array<i16, kArrayCells>& prev) const;

  std::array<Cell, kArrayCells> cells_{};
  u64 cycles_ = 0;
  u64 active_ops_ = 0;
};

}  // namespace adriatic::morphosys
