#include "morphosys/kernels.hpp"

#include "morphosys/assembler.hpp"
#include "util/strings.hpp"

namespace adriatic::morphosys {

namespace {
Context uniform(ContextWord w) {
  Context c;
  c.rows.fill(w);
  return c;
}
}  // namespace

std::vector<Context> scale_shift_contexts(i16 gain, i16 shift) {
  ContextWord mul;
  mul.op = RcOp::kMul;
  mul.src_a = MuxSel::kFrameBuf;
  mul.src_b = MuxSel::kImm;
  mul.imm = gain;
  mul.dst_reg = 0;

  ContextWord shr;
  shr.op = RcOp::kShr;
  shr.src_a = MuxSel::kReg0;
  shr.src_b = MuxSel::kImm;
  shr.imm = shift;
  shr.dst_reg = 1;
  shr.write_fb = true;

  return {uniform(mul), uniform(shr)};
}

std::vector<Context> add_bias_contexts(i16 bias) {
  ContextWord add;
  add.op = RcOp::kAdd;
  add.src_a = MuxSel::kFrameBuf;
  add.src_b = MuxSel::kImm;
  add.imm = bias;
  add.dst_reg = 0;
  add.write_fb = true;
  return {uniform(add)};
}

std::vector<Context> absdiff_contexts() {
  ContextWord ad;
  ad.op = RcOp::kAbsDiff;
  ad.src_a = MuxSel::kFrameBuf;
  ad.src_b = MuxSel::kReg1;
  ad.dst_reg = 0;
  ad.write_fb = true;
  return {uniform(ad)};
}

std::vector<Context> column_mac_contexts(const std::array<i16, 8>& coeffs) {
  Context mac;
  for (usize col = 0; col < 8; ++col) {
    ContextWord w;
    w.op = RcOp::kMac;
    w.src_a = MuxSel::kFrameBuf;
    w.src_b = MuxSel::kImm;
    w.imm = coeffs[col];
    w.dst_reg = 3;
    mac.rows[col] = w;  // column-broadcast: word per column
  }
  return {mac};
}

std::string tile_driver_asm(usize src, usize dst, usize n_words,
                            usize ctx_image_addr, usize plane,
                            usize n_contexts) {
  const usize chunks = ceil_div<usize>(n_words, kArrayCells);
  std::string s;
  s += strfmt("    ADDI r1, r0, %zu\n", src);
  s += strfmt("    ADDI r2, r0, 0\n");
  s += strfmt("    ADDI r4, r0, %zu\n", ctx_image_addr);
  s += strfmt("    DMACL %zu, r4, %zu\n", plane, n_contexts);
  s += strfmt("    DMALD r1, r2, %zu\n", n_words);
  s += "    WAITDMA\n    RAMODE row\n";
  s += strfmt("    ADDI r6, r0, %zu\n", chunks);
  s += "    chunk:\n";
  for (usize c = 0; c < n_contexts; ++c)
    s += strfmt("    RAEXEC %zu, %zu, r2, 1\n", plane, c);
  s += strfmt("    ADDI r2, r2, %zu\n", kArrayCells);
  s += "    ADDI r6, r6, -1\n    BNE r6, r0, chunk\n";
  s += strfmt("    ADDI r2, r0, 0\n    ADDI r5, r0, %zu\n", dst);
  s += strfmt("    DMAST r2, r5, %zu\n", n_words);
  s += "    WAITDMA\n    HALT\n";
  return s;
}

bool run_tile_kernel(Machine& machine, const std::vector<Context>& contexts,
                     usize src, usize dst, usize n_words,
                     usize ctx_image_addr, usize plane, u64 max_cycles) {
  for (usize i = 0; i < contexts.size(); ++i)
    machine.store_context_image(ctx_image_addr + i * 8, contexts[i]);
  const auto prog = assemble(
      tile_driver_asm(src, dst, n_words, ctx_image_addr, plane,
                      contexts.size()));
  return machine.run(prog, max_cycles);
}

}  // namespace adriatic::morphosys
