// Prebuilt RC-array context programs for common data-parallel kernels, plus
// helpers that assemble the TinyRISC driver code around them. These are the
// "mapping library" a MorphoSys-class compiler framework would emit.
#pragma once

#include <string>
#include <vector>

#include "morphosys/isa.hpp"
#include "morphosys/machine.hpp"

namespace adriatic::morphosys {

/// out[i] = (in[i] * gain) >> shift, elementwise over the frame buffer.
/// Two contexts: multiply (ctx 0), shift + write-back (ctx 1).
[[nodiscard]] std::vector<Context> scale_shift_contexts(i16 gain, i16 shift);

/// out[i] = saturate(in[i] + bias), single context with write-back.
[[nodiscard]] std::vector<Context> add_bias_contexts(i16 bias);

/// out[i] = |a[i] - b[i]| where a is streamed and b was preloaded into reg1
/// by a previous pass; single context with write-back. (SAD building block.)
[[nodiscard]] std::vector<Context> absdiff_contexts();

/// Per-column FIR-style MAC sweep: reg3 += in[i] * coeff[col], using
/// column-broadcast mode so each column applies its own coefficient.
[[nodiscard]] std::vector<Context> column_mac_contexts(
    const std::array<i16, 8>& coeffs);

/// Emits a TinyRISC program that (1) DMA-loads `n_words` from `src` into the
/// frame buffer, (2) loads `contexts.size()` contexts into `plane`,
/// (3) executes each context over ceil(n_words/64) chunks in order,
/// (4) stores the frame buffer back to `dst`, (5) halts.
[[nodiscard]] std::string tile_driver_asm(usize src, usize dst, usize n_words,
                                          usize ctx_image_addr, usize plane,
                                          usize n_contexts);

/// Convenience: installs the context images at `ctx_image_addr` and runs the
/// generated driver over the machine. Returns false if the program did not
/// halt within the cycle budget.
bool run_tile_kernel(Machine& machine, const std::vector<Context>& contexts,
                     usize src, usize dst, usize n_words,
                     usize ctx_image_addr = 0x6000, usize plane = 0,
                     u64 max_cycles = 10'000'000);

}  // namespace adriatic::morphosys
