// Two-pass assembler for the TinyRISC + RA/DMA instruction set, so example
// programs and tests read like the microcode listings in the MorphoSys
// literature rather than C++ initializer soup.
//
// Syntax (one instruction per line; ';' or '#' starts a comment):
//   label:
//   ADDI  r1, r0, 5
//   ADD   r1, r2, r3         ; also SUB, MUL
//   LDW   r1, r2, 16         ; r1 = mem[r2 + 16]
//   STW   r2, 16, r1         ; mem[r2 + 16] = r1
//   BEQ   r1, r2, label      ; also BNE
//   JMP   label
//   DMALD r_mem, r_fb, 64    ; main memory -> frame buffer
//   DMAST r_fb, r_mem, 64    ; frame buffer -> main memory
//   DMACL 1, r_mem, 4        ; load 4 contexts into plane 1
//   RAMODE row|col
//   RAEXEC plane, ctx, r_fbbase, cycles
//   WAITDMA
//   NOP
//   HALT
#pragma once

#include <string>

#include "morphosys/isa.hpp"

namespace adriatic::morphosys {

/// Assembles `source` into a Program; throws std::invalid_argument with a
/// line-numbered message on syntax errors or unknown labels.
[[nodiscard]] Program assemble(const std::string& source);

}  // namespace adriatic::morphosys
