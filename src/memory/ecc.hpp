// ECC fault model for the paged memory subsystem: a SECDED-style ladder
// layered over the deterministic fault-plan machinery.
//
// Upsets are drawn from a fault::FaultPlan whose kCorrupt rules/scripts give
// the per-read upset probability and weight: `corrupt_bits == 1` is a
// correctable single-event upset (silently corrected and counted when
// correction is enabled), `corrupt_bits >= 2` is beyond single-error
// correction — the read is *detected* as bad (SECDED detects double errors),
// counted, and recorded in the FaultLedger as kEccUncorrectable. In storage
// mode the flipped bits land in the backing PagedStore (bypassing checksum
// maintenance, so scrubbing finds them); the poisoned word keeps failing
// reads until a scrub or repair-on-detect restores its page from the golden
// image — which is exactly the retry/scrub shape the DRCF RecoveryPolicy
// ladder expects from a config fetch. kDelay/kError rules in the plan are
// ignored here: bus-level errors stay the bus interposer's job.
#pragma once

#include <unordered_map>

#include "fault/ledger.hpp"
#include "fault/plan.hpp"
#include "kernel/time.hpp"
#include "memory/paged_store.hpp"

namespace adriatic::mem {

struct EccConfig {
  /// kCorrupt rules/scripts drive upsets; other kinds are ignored.
  fault::FaultPlan upsets;
  /// Correct single-bit upsets (count only). When false the model degrades
  /// to raw payload corruption — the legacy FaultyMemory behavior.
  bool correct_single = true;
  /// Flip bits in the backing store (persistent, scrubbable) rather than
  /// only in the returned payload (transient, per-read).
  bool storage_upsets = true;
  /// On a detected uncorrectable read, immediately restore the page from
  /// its golden image so the caller's retry converges.
  bool repair_on_detect = true;
  /// Fail the bus read (slave error) on a detected-uncorrectable word —
  /// what feeds the DRCF recovery ladder. When false the corrupted payload
  /// is delivered as data (legacy FaultyMemory semantics).
  bool signal_uncorrectable = true;
  /// Background scrubber sweep period; zero disables the scrubber process.
  kern::Time scrub_period = kern::Time::zero();

  [[nodiscard]] bool enabled() const noexcept { return !upsets.empty(); }
};

struct EccStats {
  u64 upsets = 0;          ///< Total upset events drawn from the plan.
  u64 corrected = 0;       ///< Single-bit upsets silently corrected.
  u64 uncorrectable = 0;   ///< Multi-bit (or uncorrected) upsets.
  u64 detected_reads = 0;  ///< Reads that hit an already-poisoned word.
  u64 repairs = 0;         ///< Pages restored on detection (repair_on_detect).
  u64 scrub_sweeps = 0;    ///< Full resident-set scrub passes.
  u64 scrub_repairs = 0;   ///< Pages the scrubber restored.
};

class EccModel {
 public:
  /// `store`/`low` map bus addresses onto the backing pages for storage
  /// upsets and repair; `site` identifies this memory in the ledger (use
  /// kern::sched_name_hash of the memory's name).
  EccModel(EccConfig cfg, u64 site, PagedStore* store, bus::addr_t low);

  void set_ledger(fault::FaultLedger* ledger) noexcept { ledger_ = ledger; }

  enum class ReadOutcome : u8 {
    kClean,          ///< No upset (or a kind this model ignores).
    kCorrected,      ///< Single-bit upset corrected; payload untouched.
    kUncorrectable,  ///< Detected-uncorrectable; payload/storage corrupted.
  };

  /// Consults the model for one word read. `*data` holds the stored value
  /// and is corrupted in place for uncorrectable/uncorrected upsets.
  ReadOutcome on_read(kern::Time now, bus::addr_t addr, bus::word* data);

  /// One scrub pass over every resident page of the backing store: verifies
  /// checksums, restores corrupted pages from their golden image, clears
  /// their poison. Returns the number of pages repaired.
  usize scrub_resident(kern::Time now);

  [[nodiscard]] bool poisoned(bus::addr_t addr) const {
    return poisoned_.count(addr) != 0;
  }
  [[nodiscard]] const EccStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const EccConfig& config() const noexcept { return cfg_; }
  /// True when the plan can fire — memories must decline DMI then, or the
  /// fast path would bypass injection and detection entirely.
  [[nodiscard]] bool active() const noexcept { return cfg_.enabled(); }

 private:
  void clear_poison_in_page(usize page);
  bool repair_page(kern::Time now, usize page);

  EccConfig cfg_;
  fault::FaultInjector injector_;
  u64 site_;
  PagedStore* store_;
  bus::addr_t low_;
  fault::FaultLedger* ledger_ = nullptr;
  /// Storage-mode words known corrupted beyond correction: addr -> bits.
  std::unordered_map<bus::addr_t, u32> poisoned_;
  EccStats stats_;
};

}  // namespace adriatic::mem
