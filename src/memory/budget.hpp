// Process-wide resident-page accounting. Every materialized PagedStore page
// charges the singleton MemoryBudget; exceeding the configured limit throws
// BudgetExceededError instead of letting the host allocator OOM. The campaign
// layer converts that typed error into a `budget-quarantined` job verdict so
// one oversized job degrades gracefully instead of killing the whole sweep.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

#include "util/types.hpp"

namespace adriatic::mem {

/// Thrown when materializing a page would push the process over the budget.
/// Carries the accounting snapshot so reports can show how far over the job
/// tried to go. Derives from std::runtime_error so untyped handlers still see
/// a descriptive message rather than a bare std::bad_alloc.
class BudgetExceededError : public std::runtime_error {
 public:
  BudgetExceededError(u64 requested_bytes, u64 resident_bytes, u64 limit_bytes,
                      u64 high_water_bytes);

  [[nodiscard]] u64 requested_bytes() const noexcept { return requested_; }
  [[nodiscard]] u64 resident_bytes() const noexcept { return resident_; }
  [[nodiscard]] u64 limit_bytes() const noexcept { return limit_; }
  [[nodiscard]] u64 high_water_bytes() const noexcept { return high_water_; }

 private:
  u64 requested_;
  u64 resident_;
  u64 limit_;
  u64 high_water_;
};

/// Singleton tracking resident pages across *all* PagedStore instances in the
/// process (campaign thread mode shares it; process mode children inherit the
/// limit through fork or the ADRIATIC_MEM_BUDGET_MB environment variable).
/// All counters are atomics: charge/credit happen on worker threads.
class MemoryBudget {
 public:
  static MemoryBudget& instance();

  /// 0 = unlimited (the default). Setting a limit does not evict anything
  /// already resident; only future charges are refused.
  void set_limit_bytes(u64 limit);
  [[nodiscard]] u64 limit_bytes() const noexcept {
    return limit_.load(std::memory_order_relaxed);
  }

  /// Accounts `bytes` of new resident storage. Throws BudgetExceededError
  /// (leaving the counters unchanged) if the charge would exceed the limit.
  void charge(u64 bytes);
  /// Releases `bytes` previously charged.
  void credit(u64 bytes) noexcept;

  [[nodiscard]] u64 resident_bytes() const noexcept {
    return resident_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 high_water_bytes() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// Test/tool hook: reset the high-water mark to the current resident level
  /// so per-phase peaks can be measured (resident accounting is untouched).
  void reset_high_water() noexcept;

 private:
  MemoryBudget();

  std::atomic<u64> limit_{0};
  std::atomic<u64> resident_{0};
  std::atomic<u64> high_water_{0};
};

}  // namespace adriatic::mem
