// Timing-parameterised memory slaves: RAM, ROM, and the configuration
// (context) memory that stores DRCF bitstreams. Word-addressed: each bus
// address holds one 32-bit word.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bus/interfaces.hpp"
#include "kernel/module.hpp"
#include "kernel/simulation.hpp"
#include "util/stats.hpp"

namespace adriatic::mem {

struct MemoryStats {
  u64 reads = 0;
  u64 writes = 0;
  u64 errors = 0;  ///< Out-of-range or read-only violations.
};

class Memory : public kern::Module,
               public bus::BusSlaveIf,
               public bus::DmiProvider {
 public:
  Memory(kern::Object& parent, std::string name, bus::addr_t low,
         usize size_words, kern::Time read_latency = kern::Time::zero(),
         kern::Time write_latency = kern::Time::zero());

  // BusSlaveIf ----------------------------------------------------------------
  [[nodiscard]] bus::addr_t get_low_add() const override { return low_; }
  [[nodiscard]] bus::addr_t get_high_add() const override {
    return low_ + static_cast<bus::addr_t>(words_.size()) - 1;
  }
  bool read(bus::addr_t add, bus::word* data) override;
  bool write(bus::addr_t add, bus::word* data) override;

  // bus::DmiProvider ----------------------------------------------------------
  /// Grants the whole backing store with this memory's word latencies.
  /// Loose-mode fast paths bypass read()/write() through the pointer, so
  /// MemoryStats do not see DMI traffic (the usual TLM-2 trade-off).
  /// Subclasses that intercept accesses (FaultyMemory) must decline.
  bool get_dmi(bus::addr_t add, bus::DmiRegion* out) override;
  /// Withdraws DMI for this memory: pending grants are invalidated and
  /// future requests declined, forcing every access back through
  /// read()/write(). Used by fault interposition and tests.
  void set_dmi_enabled(bool enabled);

  // Backdoor access (no timing, no stats) — loaders and checkers only.
  void load(bus::addr_t add, std::span<const bus::word> data);
  [[nodiscard]] bus::word peek(bus::addr_t add) const;
  void poke(bus::addr_t add, bus::word value);

  [[nodiscard]] const MemoryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] usize size_words() const noexcept { return words_.size(); }

 protected:
  [[nodiscard]] bool in_range(bus::addr_t add) const {
    return add >= low_ && add <= get_high_add();
  }

  bus::addr_t low_;
  std::vector<bus::word> words_;
  kern::Time read_latency_;
  kern::Time write_latency_;
  MemoryStats stats_;
  bool dmi_enabled_ = true;
};

/// Read-only memory: bus writes fail (and count as errors). DMI grants are
/// read-only so fast-path writes fall back to write() and fail identically.
class Rom : public Memory {
 public:
  Rom(kern::Object& parent, std::string name, bus::addr_t low,
      std::span<const bus::word> contents,
      kern::Time read_latency = kern::Time::zero());

  bool write(bus::addr_t add, bus::word* data) override;
  bool get_dmi(bus::addr_t add, bus::DmiRegion* out) override;
};

}  // namespace adriatic::mem
