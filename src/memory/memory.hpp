// Timing-parameterised memory slaves: RAM, ROM, and the configuration
// (context) memory that stores DRCF bitstreams. Word-addressed: each bus
// address holds one 32-bit word.
//
// Since PR 9 the backing is a sparse copy-on-write PagedStore: untouched
// pages cost nothing, identical images are attached from the process-wide
// ImageRegistry and shared until written, and every materialized page charges
// the MemoryBudget. An optional ECC fault model (set_ecc) injects seeded
// upsets on reads — corrected, or detected-uncorrectable into the
// FaultLedger — and a background scrubber can sweep resident pages on a
// sim-time period. With ECC off the bus-visible behavior is byte- and
// timing-identical to the old flat vector backing.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "bus/interfaces.hpp"
#include "kernel/module.hpp"
#include "kernel/simulation.hpp"
#include "memory/ecc.hpp"
#include "memory/paged_store.hpp"
#include "util/stats.hpp"

namespace adriatic::mem {

struct MemoryStats {
  u64 reads = 0;
  u64 writes = 0;
  u64 errors = 0;  ///< Out-of-range, read-only, or integrity violations.
};

class Memory : public kern::Module,
               public bus::BusSlaveIf,
               public bus::DmiProvider {
 public:
  Memory(kern::Object& parent, std::string name, bus::addr_t low,
         usize size_words, kern::Time read_latency = kern::Time::zero(),
         kern::Time write_latency = kern::Time::zero());

  // BusSlaveIf ----------------------------------------------------------------
  [[nodiscard]] bus::addr_t get_low_add() const override { return low_; }
  [[nodiscard]] bus::addr_t get_high_add() const override {
    return low_ + static_cast<bus::addr_t>(store_.size_words()) - 1;
  }
  bool read(bus::addr_t add, bus::word* data) override;
  bool write(bus::addr_t add, bus::word* data) override;

  // bus::DmiProvider ----------------------------------------------------------
  /// Grants direct access to the *page* containing `add`, with this memory's
  /// word latencies — page-granular so a COW split or scrub of one page only
  /// revokes pointers into that store. Writable only when the page is
  /// private (a writable pointer to a shared page would bypass COW); shared
  /// pages get read-only grants and zero pages decline, so the slave path
  /// keeps serving zeros without materializing. Declines entirely while the
  /// ECC model is active: a direct pointer would bypass injection and
  /// detection. Loose-mode fast paths bypass read()/write() through the
  /// pointer, so MemoryStats do not see DMI traffic (the usual TLM-2
  /// trade-off).
  bool get_dmi(bus::addr_t add, bus::DmiRegion* out) override;
  /// Withdraws DMI for this memory: pending grants are invalidated and
  /// future requests declined, forcing every access back through
  /// read()/write(). Used by fault interposition and tests.
  void set_dmi_enabled(bool enabled);

  // Backdoor access (no timing, no stats) — loaders and checkers only.
  void load(bus::addr_t add, std::span<const bus::word> data);
  [[nodiscard]] bus::word peek(bus::addr_t add) const;
  void poke(bus::addr_t add, bus::word value);

  // Paged backing -------------------------------------------------------------
  /// Attaches a shared image at bus address `at` (store-relative offset must
  /// be page-aligned and the target pages untouched — see
  /// PagedStore::attach_image). Jobs attaching the same interned image share
  /// its resident pages until they diverge.
  void attach_image(const SharedImageRef& image, bus::addr_t at);
  [[nodiscard]] PagedStore& backing() noexcept { return store_; }
  [[nodiscard]] const PagedStore& backing() const noexcept { return store_; }

  // Integrity / ECC -----------------------------------------------------------
  /// Installs the ECC fault model (replacing any previous one) and, when
  /// cfg.scrub_period is nonzero, spawns the background scrubber process.
  void set_ecc(EccConfig cfg);
  /// Ledger for integrity events (checksum failures, uncorrectable upsets,
  /// scrub repairs); forwarded to the ECC model.
  void set_fault_ledger(fault::FaultLedger* ledger);
  [[nodiscard]] EccModel* ecc() noexcept { return ecc_.get(); }
  [[nodiscard]] const EccModel* ecc() const noexcept { return ecc_.get(); }
  /// One synchronous scrub pass over resident pages; returns pages repaired.
  usize scrub_now();

  [[nodiscard]] const MemoryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] usize size_words() const noexcept {
    return store_.size_words();
  }

 protected:
  [[nodiscard]] bool in_range(bus::addr_t add) const {
    return add >= low_ && add <= get_high_add();
  }

  bus::addr_t low_;
  PagedStore store_;
  kern::Time read_latency_;
  kern::Time write_latency_;
  MemoryStats stats_;
  bool dmi_enabled_ = true;
  u64 site_;  ///< sched_name_hash(name()) — ledger site id.
  fault::FaultLedger* ledger_ = nullptr;
  std::unique_ptr<EccModel> ecc_;
  bool scrubber_spawned_ = false;
};

/// Read-only memory: bus writes fail (and count as errors). DMI grants are
/// read-only so fast-path writes fall back to write() and fail identically.
/// Contents are interned in the ImageRegistry: identical ROMs across
/// stores/jobs share their resident pages.
class Rom : public Memory {
 public:
  Rom(kern::Object& parent, std::string name, bus::addr_t low,
      std::span<const bus::word> contents,
      kern::Time read_latency = kern::Time::zero());

  bool write(bus::addr_t add, bus::word* data) override;
  bool get_dmi(bus::addr_t add, bus::DmiRegion* out) override;
};

}  // namespace adriatic::mem
