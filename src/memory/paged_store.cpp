#include "memory/paged_store.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "util/strings.hpp"

namespace adriatic::mem {

namespace {

// splitmix64 avalanche — same shape as conformance::TraceDigest::mix, so
// checksums mix well even for near-identical pages.
constexpr u64 mix64(u64 z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr u64 kFnvSeed = 14695981039346656037ULL;
constexpr u64 kFnvPrime = 1099511628211ULL;

constexpr u64 fnv_step(u64 h, u32 w) noexcept {
  for (int b = 0; b < 4; ++b) {
    h ^= (w >> (8 * b)) & 0xFFu;
    h *= kFnvPrime;
  }
  return h;
}

bool all_zero(std::span<const bus::word> words) {
  return std::all_of(words.begin(), words.end(),
                     [](bus::word w) { return w == 0; });
}

}  // namespace

u64 checksum_term(usize i, bus::word w) {
  return mix64((static_cast<u64>(i) << 32) ^ static_cast<u32>(w));
}

u64 page_checksum(std::span<const bus::word> words) {
  u64 sum = 0;
  for (usize i = 0; i < words.size(); ++i) sum += checksum_term(i, words[i]);
  return sum;
}

u64 image_digest(std::span<const bus::word> contents) {
  u64 h = kFnvSeed;
  for (const bus::word w : contents) h = fnv_step(h, static_cast<u32>(w));
  return h;
}

PageData::PageData(std::span<const bus::word> src) : words(kPageWords, 0) {
  std::copy(src.begin(), src.end(), words.begin());
  checksum = page_checksum(words);
}

u64 PageData::zero_checksum() {
  static const u64 cks = [] {
    const std::vector<bus::word> zeros(kPageWords, 0);
    return page_checksum(zeros);
  }();
  return cks;
}

// SharedImage -----------------------------------------------------------------

bus::word SharedImage::word_at(usize i) const {
  const usize page = i / kPageWords;
  if (i >= size_words_ || page >= pages_.size()) return 0;
  const PageRef& ref = pages_[page];
  return ref ? ref->words[i % kPageWords] : 0;
}

usize SharedImage::resident_pages() const noexcept {
  return static_cast<usize>(
      std::count_if(pages_.begin(), pages_.end(),
                    [](const PageRef& p) { return p != nullptr; }));
}

// ImageRegistry ---------------------------------------------------------------

struct ImageRegistry::Impl {
  mutable std::mutex mu;
  std::unordered_map<u64, SharedImageRef> images;
  std::unordered_map<u64, std::weak_ptr<PageData>> pool;
  ImageRegistryStats stats;
};

ImageRegistry::Impl& ImageRegistry::impl() const {
  static Impl i;
  return i;
}

ImageRegistry& ImageRegistry::instance() {
  static ImageRegistry registry;
  return registry;
}

SharedImageRef ImageRegistry::intern(std::span<const bus::word> contents) {
  Impl& im = impl();
  const u64 digest = image_digest(contents);
  std::lock_guard<std::mutex> lock(im.mu);
  if (auto it = im.images.find(digest); it != im.images.end()) {
    ++im.stats.image_hits;
    return it->second;
  }
  const usize page_count = ceil_div(contents.size(), kPageWords);
  std::vector<PageRef> pages;
  pages.reserve(page_count);
  for (usize p = 0; p < page_count; ++p) {
    const usize at = p * kPageWords;
    const auto chunk =
        contents.subspan(at, std::min(kPageWords, contents.size() - at));
    if (all_zero(chunk)) {
      pages.push_back(nullptr);
      continue;
    }
    // Secondary dedup: identical pages of *different* images share storage.
    // Digest-keyed with a full content compare on hit, so a 64-bit collision
    // degrades to a private copy instead of silent aliasing.
    const u64 pd = image_digest(chunk);
    if (auto it = im.pool.find(pd); it != im.pool.end()) {
      if (PageRef hit = it->second.lock()) {
        if (std::equal(chunk.begin(), chunk.end(), hit->words.begin()) &&
            all_zero(std::span<const bus::word>(hit->words)
                         .subspan(chunk.size()))) {
          ++im.stats.page_hits;
          pages.push_back(std::move(hit));
          continue;
        }
      }
    }
    PageRef fresh = std::make_shared<PageData>(chunk);
    im.pool[pd] = fresh;
    pages.push_back(std::move(fresh));
  }
  auto image = std::make_shared<const SharedImage>(digest, contents.size(),
                                                   std::move(pages));
  im.images.emplace(digest, image);
  ++im.stats.interned;
  return image;
}

SharedImageRef ImageRegistry::find(u64 digest) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.images.find(digest);
  return it == im.images.end() ? nullptr : it->second;
}

usize ImageRegistry::drop_unused() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  usize dropped = 0;
  for (auto it = im.images.begin(); it != im.images.end();) {
    if (it->second.use_count() == 1) {
      it = im.images.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  im.stats.interned -= dropped;
  for (auto it = im.pool.begin(); it != im.pool.end();) {
    it = it->second.expired() ? im.pool.erase(it) : std::next(it);
  }
  return dropped;
}

ImageRegistryStats ImageRegistry::stats() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.stats;
}

// PagedStore ------------------------------------------------------------------

bool PagedStore::flat_backing_ = false;

bool PagedStore::debug_set_flat_backing(bool flat) {
  const bool was = flat_backing_;
  flat_backing_ = flat;
  return was;
}

PagedStore::PagedStore(usize size_words, std::string name)
    : name_(std::move(name)),
      size_words_(size_words),
      flat_(flat_backing_),
      pages_(ceil_div(size_words, kPageWords)),
      golden_(pages_.size()),
      verified_(pages_.size(), 0),
      pinned_(pages_.size(), 0) {
  if (size_words == 0) throw std::invalid_argument(name_ + ": empty store");
  if (flat_) {
    // Flat semantics: every page resident up front, nothing ever shared —
    // the reference backing for the paged-vs-flat differential suite.
    for (usize p = 0; p < pages_.size(); ++p) materialize(p, true);
  }
}

PagedStore::~PagedStore() = default;

usize PagedStore::page_index_checked(usize idx, const char* what) const {
  if (idx >= size_words_)
    throw std::out_of_range(strfmt("%s: %s index %zu outside %zu words",
                                   name_.c_str(), what, idx, size_words_));
  return idx / kPageWords;
}

void PagedStore::revoke_pins(usize page) {
  if (!any_pinned_ || !pinned_[page]) return;
  ++stats_.revocations;
  std::fill(pinned_.begin(), pinned_.end(), u8{0});
  any_pinned_ = false;
  if (revoke_cb_) revoke_cb_();
}

PageData& PagedStore::materialize(usize page, bool preserve_golden) {
  PageRef& slot = pages_[page];
  if (!slot) {
    slot = std::make_shared<PageData>();
    ++resident_;
    ++stats_.pages_materialized;
    verified_[page] = 1;
  } else if (slot.use_count() > 1) {
    // COW split: readers elsewhere keep the old page; any outstanding DMI
    // pointer into this store now aliases the stale copy, so revoke it.
    revoke_pins(page);
    slot = std::make_shared<PageData>(
        std::span<const bus::word>(slot->words));
    ++stats_.cow_splits;
    ++stats_.pages_materialized;
  }
  if (!preserve_golden) golden_[page].image.reset();
  return *slot;
}

bus::word PagedStore::read(usize idx) {
  const usize page = page_index_checked(idx, "read");
  const PageRef& slot = pages_[page];
  if (!slot) {
    ++stats_.zero_page_reads;
    return 0;
  }
  return slot->words[idx % kPageWords];
}

bool PagedStore::check_page_on_read(usize page) {
  if (page >= pages_.size() || !pages_[page] || verified_[page]) return true;
  if (!verify_page(page)) {
    ++stats_.checksum_failures;
    return false;
  }
  verified_[page] = 1;
  return true;
}

void PagedStore::write(usize idx, bus::word value) {
  const usize page = page_index_checked(idx, "write");
  PageData& p = materialize(page, /*preserve_golden=*/false);
  const usize off = idx % kPageWords;
  p.checksum += checksum_term(off, value) - checksum_term(off, p.words[off]);
  p.words[off] = value;
}

void PagedStore::load(usize at, std::span<const bus::word> data) {
  if (data.empty()) return;
  if (at + data.size() > size_words_)
    throw std::out_of_range(name_ + ": load outside store");
  for (usize i = 0; i < data.size(); ++i) write(at + i, data[i]);
}

bus::word PagedStore::peek(usize idx) const {
  if (idx >= size_words_)
    throw std::out_of_range(name_ + ": peek outside store");
  const PageRef& slot = pages_[idx / kPageWords];
  return slot ? slot->words[idx % kPageWords] : 0;
}

void PagedStore::attach_image(const SharedImageRef& image, usize at) {
  if (!image) throw std::invalid_argument(name_ + ": attach of null image");
  if (at % kPageWords != 0)
    throw std::invalid_argument(name_ + ": attach offset not page-aligned");
  const usize first = at / kPageWords;
  if (at >= size_words_ || first + image->page_count() > pages_.size())
    throw std::out_of_range(name_ + ": attach outside store");
  for (usize i = 0; i < image->page_count(); ++i) {
    const usize slot = first + i;
    revoke_pins(slot);
    if (flat_) {
      // Flat semantics: copy, never share — but keep the golden link so
      // scrub behavior matches the paged backing.
      PageData& p = materialize(slot, /*preserve_golden=*/true);
      const PageRef& src = image->page(i);
      if (src) {
        p.words = src->words;
        p.checksum = src->checksum;
      } else {
        std::fill(p.words.begin(), p.words.end(), 0);
        p.checksum = PageData::zero_checksum();
      }
    } else {
      const PageRef& src = image->page(i);
      if (pages_[slot] && !src) --resident_;
      if (!pages_[slot] && src) ++resident_;
      pages_[slot] = src;
      if (src) ++stats_.pages_attached;
    }
    golden_[slot] = GoldenRef{image, i};
    verified_[slot] = 0;
  }
}

bool PagedStore::pages_untouched(usize at, usize len) const {
  if (len == 0) return true;
  const usize first = at / kPageWords;
  const usize last = (at + len - 1) / kPageWords;
  for (usize p = first; p <= last && p < pages_.size(); ++p) {
    if (pages_[p] || golden_[p].image) return false;
  }
  return true;
}

bool PagedStore::page_resident(usize page) const {
  return page < pages_.size() && pages_[page] != nullptr;
}

bool PagedStore::page_shared(usize page) const {
  return page < pages_.size() && pages_[page] &&
         pages_[page].use_count() > 1;
}

usize PagedStore::shared_pages() const {
  usize n = 0;
  for (usize p = 0; p < pages_.size(); ++p)
    if (page_shared(p)) ++n;
  return n;
}

bool PagedStore::verify_page(usize page) const {
  if (page >= pages_.size() || !pages_[page]) return true;
  return page_checksum(pages_[page]->words) == pages_[page]->checksum;
}

void PagedStore::corrupt_stored(usize idx, u32 mask) {
  const usize page = page_index_checked(idx, "corrupt");
  // The upset must not damage the shared golden copy other stores read from,
  // so split first — but keep the golden link: this divergence is exactly
  // what scrubbing exists to repair.
  PageData& p = materialize(page, /*preserve_golden=*/true);
  p.words[idx % kPageWords] ^= static_cast<bus::word>(mask);
}

bool PagedStore::page_has_golden(usize page) const {
  return page < pages_.size() && golden_[page].image != nullptr;
}

bool PagedStore::restore_from_golden(usize page) {
  if (!page_has_golden(page)) return false;
  revoke_pins(page);
  const GoldenRef& g = golden_[page];
  const PageRef& src = g.image->page(g.image_page);
  if (flat_) {
    PageData& p = materialize(page, /*preserve_golden=*/true);
    if (src) {
      p.words = src->words;
      p.checksum = src->checksum;
    } else {
      std::fill(p.words.begin(), p.words.end(), 0);
      p.checksum = PageData::zero_checksum();
    }
  } else {
    // Re-adopt the golden page (or its zero elision): the corrupt private
    // copy is released, which also credits its budget charge back.
    if (pages_[page] && !src) --resident_;
    if (!pages_[page] && src) ++resident_;
    pages_[page] = src;
  }
  verified_[page] = 1;
  ++stats_.golden_restores;
  return true;
}

bool PagedStore::scrub_page(usize page) {
  if (!page_resident(page)) return true;
  if (verify_page(page)) return true;
  ++stats_.checksum_failures;
  return restore_from_golden(page);
}

const bus::word* PagedStore::page_data(usize page) const {
  if (!page_resident(page)) return nullptr;
  return pages_[page]->words.data();
}

bus::word* PagedStore::page_data_mutable(usize page) {
  if (!page_resident(page) || pages_[page].use_count() > 1) return nullptr;
  return pages_[page]->words.data();
}

void PagedStore::pin_page(usize page) {
  if (page >= pinned_.size()) return;
  pinned_[page] = 1;
  any_pinned_ = true;
}

}  // namespace adriatic::mem
