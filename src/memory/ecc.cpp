#include "memory/ecc.hpp"

namespace adriatic::mem {

EccModel::EccModel(EccConfig cfg, u64 site, PagedStore* store, bus::addr_t low)
    : cfg_(std::move(cfg)),
      injector_(cfg_.upsets, site),
      site_(site),
      store_(store),
      low_(low) {}

void EccModel::clear_poison_in_page(usize page) {
  const bus::addr_t base = low_ + static_cast<bus::addr_t>(page * kPageWords);
  for (auto it = poisoned_.begin(); it != poisoned_.end();) {
    it = (it->first >= base && it->first < base + kPageWords)
             ? poisoned_.erase(it)
             : std::next(it);
  }
}

bool EccModel::repair_page(kern::Time now, usize page) {
  if (store_ == nullptr || !store_->restore_from_golden(page)) return false;
  clear_poison_in_page(page);
  if (ledger_ != nullptr)
    ledger_->append(fault::FaultEventKind::kEccScrub, now.picoseconds(), site_,
                    low_ + static_cast<u64>(page * kPageWords));
  return true;
}

EccModel::ReadOutcome EccModel::on_read(kern::Time now, bus::addr_t addr,
                                        bus::word* data) {
  // A word already poisoned by an earlier upset keeps failing detectably
  // until its page is repaired — the RecoveryPolicy retry ladder depends on
  // "same fetch, same fault" persistence, not per-read re-rolls.
  if (const auto it = poisoned_.find(addr); it != poisoned_.end()) {
    ++stats_.detected_reads;
    if (ledger_ != nullptr)
      ledger_->append(fault::FaultEventKind::kEccUncorrectable,
                      now.picoseconds(), site_, addr, it->second);
    if (cfg_.repair_on_detect && store_ != nullptr &&
        repair_page(now, PagedStore::page_of(addr - low_))) {
      ++stats_.repairs;
      *data = store_->read(addr - low_);
    }
    return ReadOutcome::kUncorrectable;
  }
  const auto action = injector_.decide(now, addr, /*is_read=*/true);
  if (!action || action->kind != fault::FaultKind::kCorrupt)
    return ReadOutcome::kClean;
  ++stats_.upsets;
  const u32 bits = action->corrupt_bits;
  if (bits <= 1 && cfg_.correct_single) {
    // SEC: the syndrome pinpoints a single flipped bit; deliver the
    // corrected word and burn the mask draw so random streams stay aligned
    // with the uncorrected configuration.
    (void)injector_.corrupt(0, 1);
    ++stats_.corrected;
    return ReadOutcome::kCorrected;
  }
  const u32 mask = injector_.corrupt(0, bits);
  if (data != nullptr)
    *data = static_cast<bus::word>(static_cast<u32>(*data) ^ mask);
  if (cfg_.storage_upsets && store_ != nullptr) {
    store_->corrupt_stored(addr - low_, mask);
    poisoned_[addr] = bits;
  }
  if (bits >= 2) {
    // DED: detected but beyond correction. Single-bit upsets with
    // correction off corrupt silently — there is no ECC word to notice.
    ++stats_.uncorrectable;
    if (ledger_ != nullptr)
      ledger_->append(fault::FaultEventKind::kEccUncorrectable,
                      now.picoseconds(), site_, addr, bits);
    return ReadOutcome::kUncorrectable;
  }
  return ReadOutcome::kClean;
}

usize EccModel::scrub_resident(kern::Time now) {
  ++stats_.scrub_sweeps;
  if (store_ == nullptr) return 0;
  usize repaired = 0;
  for (usize p = 0; p < store_->page_count(); ++p) {
    if (!store_->page_resident(p) || store_->verify_page(p)) continue;
    if (repair_page(now, p)) {
      ++repaired;
      ++stats_.scrub_repairs;
    }
  }
  return repaired;
}

}  // namespace adriatic::mem
