// Failure-injection memory: a RAM whose reads flip bits with a configured
// probability — modeling soft errors in the buffers between accelerator
// stages. Used to verify that the system-level models propagate corruption
// observably (e.g. the CRC stage catches it) rather than masking faults.
#pragma once

#include "fault/plan.hpp"
#include "memory/memory.hpp"
#include "util/random.hpp"

namespace adriatic::mem {

struct FaultConfig {
  /// Probability that any given read returns a corrupted word.
  double read_error_rate = 0.0;
  /// Bits flipped per corrupted word (1 = single-event upset).
  u32 bits_per_error = 1;
  u64 seed = 0xFA017;
  /// Inject only within [window_low, window_high] (0,0 = everywhere).
  bus::addr_t window_low = 0;
  bus::addr_t window_high = 0;
};

class FaultyMemory : public Memory {
 public:
  FaultyMemory(kern::Object& parent, std::string name, bus::addr_t low,
               usize size_words, FaultConfig fault,
               kern::Time read_latency = kern::Time::zero(),
               kern::Time write_latency = kern::Time::zero())
      : Memory(parent, std::move(name), low, size_words, read_latency,
               write_latency),
        fault_(fault),
        rng_(fault.seed) {}

  bool read(bus::addr_t add, bus::word* data) override {
    const bool ok = Memory::read(add, data);
    if (!ok || data == nullptr) return ok;
    if (!in_window(add)) return true;
    if (fault_.read_error_rate > 0.0 &&
        rng_.next_bool(fault_.read_error_rate)) {
      // Distinct bit positions: repeated draws of the same position must not
      // cancel out, or an even-weight upset could silently be a no-op.
      *data = static_cast<bus::word>(fault::flip_distinct_bits(
          static_cast<u32>(*data), fault_.bits_per_error, rng_));
      ++injected_errors_;
    }
    return true;
  }

  [[nodiscard]] u64 injected_errors() const noexcept {
    return injected_errors_;
  }

  /// Never grants DMI: a direct pointer would bypass the read() override
  /// and silently disable injection.
  bool get_dmi(bus::addr_t /*add*/, bus::DmiRegion* /*out*/) override {
    return false;
  }

 private:
  [[nodiscard]] bool in_window(bus::addr_t add) const {
    if (fault_.window_low == 0 && fault_.window_high == 0) return true;
    return add >= fault_.window_low && add <= fault_.window_high;
  }

  FaultConfig fault_;
  Xoshiro256 rng_;
  u64 injected_errors_ = 0;
};

}  // namespace adriatic::mem
