// Failure-injection memory: a RAM whose reads flip bits with a configured
// probability — modeling soft errors in the buffers between accelerator
// stages. Rebased on the ECC fault model (memory/ecc.hpp): upsets are
// transient payload corruption (the backing store stays clean), multi-bit
// upsets are detected by the SECDED code and surface as kEccUncorrectable
// entries when a FaultLedger is attached (set_fault_ledger), and setting
// FaultConfig::ecc corrects single-bit upsets instead of delivering them.
// With ecc off (the default) the delivered data keeps the legacy
// fault::flip_distinct_bits semantics: corruption propagates observably
// (e.g. a CRC stage catches it) rather than being masked.
#pragma once

#include "memory/ecc.hpp"
#include "memory/memory.hpp"

namespace adriatic::mem {

struct FaultConfig {
  /// Probability that any given read returns a corrupted word.
  double read_error_rate = 0.0;
  /// Bits flipped per corrupted word (1 = single-event upset).
  u32 bits_per_error = 1;
  u64 seed = 0xFA017;
  /// Inject only within [window_low, window_high] (0,0 = everywhere).
  bus::addr_t window_low = 0;
  bus::addr_t window_high = 0;
  /// Model the ECC correcting single-bit upsets (counted, not delivered).
  /// Off by default: legacy behavior delivers every upset.
  bool ecc = false;
};

class FaultyMemory : public Memory {
 public:
  FaultyMemory(kern::Object& parent, std::string name, bus::addr_t low,
               usize size_words, FaultConfig fault,
               kern::Time read_latency = kern::Time::zero(),
               kern::Time write_latency = kern::Time::zero())
      : Memory(parent, std::move(name), low, size_words, read_latency,
               write_latency) {
    EccConfig cfg;
    cfg.upsets.seed = fault.seed;
    fault::FaultRule rule;
    rule.rate = fault.read_error_rate;
    rule.kind = fault::FaultKind::kCorrupt;
    rule.corrupt_bits = fault.bits_per_error;
    rule.window_low = fault.window_low;
    rule.window_high = fault.window_high;
    rule.reads_only = true;
    cfg.upsets.rules.push_back(rule);
    cfg.correct_single = fault.ecc;
    // Transient upsets: corrupt the delivered payload, not the store, and
    // deliver rather than fail the read — downstream integrity checks (CRC,
    // config digests) are what must catch the divergence.
    cfg.storage_upsets = false;
    cfg.repair_on_detect = false;
    cfg.signal_uncorrectable = false;
    set_ecc(std::move(cfg));
  }

  /// Upset events drawn (with FaultConfig::ecc, corrected ones included).
  [[nodiscard]] u64 injected_errors() const noexcept {
    return ecc()->stats().upsets;
  }

  /// Never grants DMI: a direct pointer would bypass the ECC model and
  /// silently disable injection. (Memory already declines while the model
  /// is active; this keeps the guarantee even at rate 0.)
  bool get_dmi(bus::addr_t /*add*/, bus::DmiRegion* /*out*/) override {
    return false;
  }
};

}  // namespace adriatic::mem
