#include "memory/memory.hpp"

#include <algorithm>
#include <stdexcept>

#include "kernel/sched_trace.hpp"

namespace adriatic::mem {

Memory::Memory(kern::Object& parent, std::string name, bus::addr_t low,
               usize size_words, kern::Time read_latency,
               kern::Time write_latency)
    : Module(parent, std::move(name)),
      low_(low),
      store_(size_words == 0 ? 1 : size_words, this->name()),
      read_latency_(read_latency),
      write_latency_(write_latency),
      site_(kern::sched_name_hash(this->name())) {
  if (size_words == 0) throw std::invalid_argument(this->name() + ": empty");
  // A COW split or golden restore frees the page a cached DMI grant points
  // into; the store's pin revocation must reach every initiator holding one.
  store_.set_revoke_listener([this] { invalidate_dmi(); });
}

bool Memory::read(bus::addr_t add, bus::word* data) {
  if (!in_range(add) || data == nullptr) {
    ++stats_.errors;
    return false;
  }
  if (!read_latency_.is_zero()) kern::wait(read_latency_);
  const usize idx = add - low_;
  // First-read integrity gate: a page whose stored checksum no longer
  // matches (torn attach, unnoticed storage corruption) fails detectably
  // instead of serving bad words — and keeps failing until scrubbed.
  if (!store_.check_page_on_read(PagedStore::page_of(idx))) {
    ++stats_.errors;
    if (ledger_ != nullptr)
      ledger_->append(fault::FaultEventKind::kEccUncorrectable,
                      sim().now().picoseconds(), site_, add, 0);
    return false;
  }
  *data = store_.read(idx);
  if (ecc_ != nullptr &&
      ecc_->on_read(sim().now(), add, data) ==
          EccModel::ReadOutcome::kUncorrectable &&
      ecc_->config().signal_uncorrectable) {
    ++stats_.errors;
    return false;
  }
  ++stats_.reads;
  return true;
}

bool Memory::write(bus::addr_t add, bus::word* data) {
  if (!in_range(add) || data == nullptr) {
    ++stats_.errors;
    return false;
  }
  if (!write_latency_.is_zero()) kern::wait(write_latency_);
  store_.write(add - low_, *data);
  ++stats_.writes;
  return true;
}

bool Memory::get_dmi(bus::addr_t add, bus::DmiRegion* out) {
  if (!dmi_enabled_ || out == nullptr || !in_range(add)) return false;
  if (ecc_ != nullptr && ecc_->active()) return false;
  const usize page = PagedStore::page_of(add - low_);
  const bus::word* ro = store_.page_data(page);
  if (ro == nullptr) return false;  // Zero page: stay lazy, slave serves 0s.
  bus::word* rw = store_.page_data_mutable(page);
  // Read-only grants into a shared page hand out a const view; allow_write
  // is the contract that keeps the fast path from writing through it.
  out->data = rw != nullptr ? rw : const_cast<bus::word*>(ro);
  out->low = low_ + static_cast<bus::addr_t>(page * kPageWords);
  out->high = std::min<bus::addr_t>(
      get_high_add(),
      out->low + static_cast<bus::addr_t>(kPageWords) - 1);
  out->read_latency = read_latency_;
  out->write_latency = write_latency_;
  out->allow_write = rw != nullptr;
  store_.pin_page(page);
  return true;
}

void Memory::set_dmi_enabled(bool enabled) {
  const bool was = dmi_enabled_;
  dmi_enabled_ = enabled;
  if (was && !enabled) invalidate_dmi();
}

void Memory::load(bus::addr_t add, std::span<const bus::word> data) {
  if (!in_range(add) || add + data.size() - 1 > get_high_add())
    throw std::out_of_range(name() + ": load outside memory");
  store_.load(add - low_, data);
}

bus::word Memory::peek(bus::addr_t add) const {
  if (!in_range(add)) throw std::out_of_range(name() + ": peek outside memory");
  return store_.peek(add - low_);
}

void Memory::poke(bus::addr_t add, bus::word value) {
  if (!in_range(add)) throw std::out_of_range(name() + ": poke outside memory");
  store_.write(add - low_, value);
}

void Memory::attach_image(const SharedImageRef& image, bus::addr_t at) {
  if (!in_range(at))
    throw std::out_of_range(name() + ": attach outside memory");
  store_.attach_image(image, at - low_);
}

void Memory::set_ecc(EccConfig cfg) {
  const kern::Time period = cfg.scrub_period;
  ecc_ = std::make_unique<EccModel>(std::move(cfg), site_, &store_, low_);
  ecc_->set_ledger(ledger_);
  if (!period.is_zero() && !scrubber_spawned_) {
    // Daemon: the periodic scrubber is an idle server, excluded from
    // deadlock/starvation reports (same pattern as Clock). Like a Clock it
    // keeps the timed queue populated, so scrubbed models need a bounded
    // run() or an explicit stop.
    auto& proc = spawn_thread("scrubber", [this, period] {
      for (;;) {
        kern::wait(period);
        scrub_now();
      }
    });
    proc.set_daemon();
    scrubber_spawned_ = true;
  }
}

void Memory::set_fault_ledger(fault::FaultLedger* ledger) {
  ledger_ = ledger;
  if (ecc_ != nullptr) ecc_->set_ledger(ledger);
}

usize Memory::scrub_now() {
  if (ecc_ != nullptr) return ecc_->scrub_resident(sim().now());
  usize repaired = 0;
  for (usize p = 0; p < store_.page_count(); ++p) {
    if (!store_.page_resident(p) || store_.verify_page(p)) continue;
    if (store_.scrub_page(p)) {
      ++repaired;
      if (ledger_ != nullptr)
        ledger_->append(fault::FaultEventKind::kEccScrub,
                        sim().now().picoseconds(), site_,
                        low_ + static_cast<u64>(p * kPageWords));
    }
  }
  return repaired;
}

Rom::Rom(kern::Object& parent, std::string name, bus::addr_t low,
         std::span<const bus::word> contents, kern::Time read_latency)
    : Memory(parent, std::move(name), low,
             contents.empty() ? 1 : contents.size(), read_latency) {
  if (!contents.empty())
    attach_image(ImageRegistry::instance().intern(contents), low);
}

bool Rom::write(bus::addr_t /*add*/, bus::word* /*data*/) {
  ++stats_.errors;
  return false;
}

bool Rom::get_dmi(bus::addr_t add, bus::DmiRegion* out) {
  if (!Memory::get_dmi(add, out)) return false;
  out->allow_write = false;
  return true;
}

}  // namespace adriatic::mem
