#include "memory/memory.hpp"

#include <stdexcept>

namespace adriatic::mem {

Memory::Memory(kern::Object& parent, std::string name, bus::addr_t low,
               usize size_words, kern::Time read_latency,
               kern::Time write_latency)
    : Module(parent, std::move(name)),
      low_(low),
      words_(size_words, 0),
      read_latency_(read_latency),
      write_latency_(write_latency) {
  if (size_words == 0) throw std::invalid_argument(this->name() + ": empty");
}

bool Memory::read(bus::addr_t add, bus::word* data) {
  if (!in_range(add) || data == nullptr) {
    ++stats_.errors;
    return false;
  }
  if (!read_latency_.is_zero()) kern::wait(read_latency_);
  *data = words_[add - low_];
  ++stats_.reads;
  return true;
}

bool Memory::write(bus::addr_t add, bus::word* data) {
  if (!in_range(add) || data == nullptr) {
    ++stats_.errors;
    return false;
  }
  if (!write_latency_.is_zero()) kern::wait(write_latency_);
  words_[add - low_] = *data;
  ++stats_.writes;
  return true;
}

bool Memory::get_dmi(bus::addr_t add, bus::DmiRegion* out) {
  if (!dmi_enabled_ || out == nullptr || !in_range(add)) return false;
  out->data = words_.data();
  out->low = low_;
  out->high = get_high_add();
  out->read_latency = read_latency_;
  out->write_latency = write_latency_;
  out->allow_write = true;
  return true;
}

void Memory::set_dmi_enabled(bool enabled) {
  const bool was = dmi_enabled_;
  dmi_enabled_ = enabled;
  if (was && !enabled) invalidate_dmi();
}

void Memory::load(bus::addr_t add, std::span<const bus::word> data) {
  if (!in_range(add) || add + data.size() - 1 > get_high_add())
    throw std::out_of_range(name() + ": load outside memory");
  for (usize i = 0; i < data.size(); ++i) words_[add - low_ + i] = data[i];
}

bus::word Memory::peek(bus::addr_t add) const {
  if (!in_range(add)) throw std::out_of_range(name() + ": peek outside memory");
  return words_[add - low_];
}

void Memory::poke(bus::addr_t add, bus::word value) {
  if (!in_range(add)) throw std::out_of_range(name() + ": poke outside memory");
  words_[add - low_] = value;
}

Rom::Rom(kern::Object& parent, std::string name, bus::addr_t low,
         std::span<const bus::word> contents, kern::Time read_latency)
    : Memory(parent, std::move(name), low,
             contents.empty() ? 1 : contents.size(), read_latency) {
  if (!contents.empty()) load(low, contents);
}

bool Rom::write(bus::addr_t /*add*/, bus::word* /*data*/) {
  ++stats_.errors;
  return false;
}

bool Rom::get_dmi(bus::addr_t add, bus::DmiRegion* out) {
  if (!Memory::get_dmi(add, out)) return false;
  out->allow_write = false;
  return true;
}

}  // namespace adriatic::mem
