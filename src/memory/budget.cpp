#include "memory/budget.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace adriatic::mem {

namespace {

std::string describe(u64 requested, u64 resident, u64 limit, u64 high_water) {
  return strfmt(
      "memory budget exceeded: requested %llu bytes with %llu resident "
      "(limit %llu, high water %llu)",
      static_cast<unsigned long long>(requested),
      static_cast<unsigned long long>(resident),
      static_cast<unsigned long long>(limit),
      static_cast<unsigned long long>(high_water));
}

}  // namespace

BudgetExceededError::BudgetExceededError(u64 requested_bytes,
                                         u64 resident_bytes, u64 limit_bytes,
                                         u64 high_water_bytes)
    : std::runtime_error(describe(requested_bytes, resident_bytes, limit_bytes,
                                  high_water_bytes)),
      requested_(requested_bytes),
      resident_(resident_bytes),
      limit_(limit_bytes),
      high_water_(high_water_bytes) {}

MemoryBudget& MemoryBudget::instance() {
  static MemoryBudget budget;
  return budget;
}

MemoryBudget::MemoryBudget() {
  // Campaign children forked before the limit was set (or spawned fresh by a
  // driver script) pick it up from the environment.
  if (const char* env = std::getenv("ADRIATIC_MEM_BUDGET_MB")) {
    const long mb = std::strtol(env, nullptr, 10);
    if (mb > 0) limit_.store(static_cast<u64>(mb) << 20);
  }
}

void MemoryBudget::set_limit_bytes(u64 limit) {
  limit_.store(limit, std::memory_order_relaxed);
}

void MemoryBudget::charge(u64 bytes) {
  const u64 limit = limit_.load(std::memory_order_relaxed);
  const u64 now = resident_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit != 0 && now > limit) {
    resident_.fetch_sub(bytes, std::memory_order_relaxed);
    throw BudgetExceededError(bytes, now - bytes, limit,
                              high_water_.load(std::memory_order_relaxed));
  }
  u64 peak = high_water_.load(std::memory_order_relaxed);
  while (now > peak && !high_water_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryBudget::credit(u64 bytes) noexcept {
  resident_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryBudget::reset_high_water() noexcept {
  high_water_.store(resident_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

}  // namespace adriatic::mem
