// Sparse copy-on-write paged backing store for memory models.
//
// A PagedStore divides its word-addressed space into fixed 4 KiB pages
// (kPageWords words). Pages are materialized lazily: reads of untouched pages
// return zero without allocating, and the first write materializes a private
// page. Identical images (config bitstreams, ROM contents, input frames) are
// interned once in the process-wide ImageRegistry and attached to any number
// of stores; attached pages are shared by refcount and split on first write
// (copy-on-write), so N campaign jobs replaying the same image keep one
// resident copy until they diverge.
//
// Integrity: every materialized page carries an order-independent checksum
// maintained on API writes and verified on the first read after the page is
// attached or materialized (and again by scrubbing). Corruption injected
// behind the API (ECC storage upsets, torn pages) deliberately bypasses that
// maintenance so verification actually detects it. Pages attached from an
// image keep a reference to their golden copy; scrubbing restores a corrupted
// page from it. API writes drop the golden link — the page legitimately
// diverged, and reverting it would be data loss, not repair.
//
// Budget: every materialized page charges the process-wide MemoryBudget and
// credits it on release, so resident-set accounting spans all stores and an
// over-budget allocation fails with a typed BudgetExceededError.
//
// PagedStore is host-side only (no simulated time); mem::Memory layers bus
// latency, DMI, and the ECC model on top.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bus/interfaces.hpp"
#include "memory/budget.hpp"
#include "util/types.hpp"

namespace adriatic::mem {

/// Page geometry: 4 KiB of 32-bit words. A power of two so page arithmetic
/// stays shift/mask and bus bursts straddle at most len/kPageWords+1 pages.
inline constexpr usize kPageWords = 1024;
inline constexpr usize kPageBytes = kPageWords * sizeof(bus::word);

/// Order-independent integrity checksum over one page: each (index, word)
/// pair is avalanched (splitmix64) and summed, so a single-word update is an
/// O(1) delta instead of an O(page) rescan.
[[nodiscard]] u64 page_checksum(std::span<const bus::word> words);
/// The contribution of word `i` holding value `w` to a page checksum.
[[nodiscard]] u64 checksum_term(usize i, bus::word w);

/// RAII charge against the process-wide MemoryBudget; throws
/// BudgetExceededError from the constructor when over budget.
class BudgetCharge {
 public:
  explicit BudgetCharge(u64 bytes) : bytes_(bytes) {
    MemoryBudget::instance().charge(bytes_);
  }
  ~BudgetCharge() { MemoryBudget::instance().credit(bytes_); }
  BudgetCharge(const BudgetCharge&) = delete;
  BudgetCharge& operator=(const BudgetCharge&) = delete;

 private:
  u64 bytes_;
};

/// One refcounted 4 KiB page. The charge member precedes the payload so the
/// budget is checked before the host allocation, and released after it.
struct PageData {
  PageData() : words(kPageWords, 0), checksum(zero_checksum()) {}
  explicit PageData(std::span<const bus::word> src);

  /// Checksum of an all-zero page (pages start zeroed, not with checksum 0).
  [[nodiscard]] static u64 zero_checksum();

  BudgetCharge charge{kPageBytes};
  std::vector<bus::word> words;
  u64 checksum = 0;
};

using PageRef = std::shared_ptr<PageData>;

/// An immutable, content-addressed image: the golden copy that stores attach
/// and scrubbers restore from. All-zero pages are elided (null PageRef), so a
/// mostly-zero image costs only its nonzero pages.
class SharedImage {
 public:
  SharedImage(u64 digest, usize size_words, std::vector<PageRef> pages)
      : digest_(digest), size_words_(size_words), pages_(std::move(pages)) {}

  [[nodiscard]] u64 digest() const noexcept { return digest_; }
  [[nodiscard]] usize size_words() const noexcept { return size_words_; }
  [[nodiscard]] usize page_count() const noexcept { return pages_.size(); }
  [[nodiscard]] const PageRef& page(usize i) const { return pages_.at(i); }
  /// Word `i` of the image (zero for elided pages and the padded tail).
  [[nodiscard]] bus::word word_at(usize i) const;
  /// Resident (non-elided) pages — what the image actually costs.
  [[nodiscard]] usize resident_pages() const noexcept;

 private:
  u64 digest_;
  usize size_words_;
  std::vector<PageRef> pages_;
};

using SharedImageRef = std::shared_ptr<const SharedImage>;

struct ImageRegistryStats {
  u64 interned = 0;    ///< Distinct images held.
  u64 image_hits = 0;  ///< intern() calls resolved to an existing image.
  u64 page_hits = 0;   ///< Pages deduplicated against the page pool.
};

/// Process-wide interning table for SharedImages, content-addressed by an
/// FNV-1a digest of the full image, with a secondary per-page pool so images
/// that differ overall still share their identical pages. Thread-safe:
/// campaign workers intern concurrently.
class ImageRegistry {
 public:
  static ImageRegistry& instance();

  /// Returns the canonical image for `contents`, building it on first sight.
  SharedImageRef intern(std::span<const bus::word> contents);
  /// Looks up a previously interned image by digest (null if absent).
  [[nodiscard]] SharedImageRef find(u64 digest) const;

  /// Drops images no longer referenced by any store. Long-running sweeps
  /// over many distinct images call this between batches; the common case
  /// (one image, many jobs) never needs to.
  usize drop_unused();

  [[nodiscard]] ImageRegistryStats stats() const;

 private:
  ImageRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Full-image content digest (FNV-1a over the raw words) — the registry key,
/// exposed so callers can precompute/report it.
[[nodiscard]] u64 image_digest(std::span<const bus::word> contents);

struct PagedStoreStats {
  u64 pages_materialized = 0;  ///< Private pages allocated (incl. splits).
  u64 cow_splits = 0;          ///< Shared pages copied on first write.
  u64 pages_attached = 0;      ///< Non-zero pages adopted from images.
  u64 zero_page_reads = 0;     ///< Reads satisfied without materializing.
  u64 checksum_failures = 0;   ///< Integrity verifications that failed.
  u64 golden_restores = 0;     ///< Pages re-silvered from their image.
  u64 revocations = 0;         ///< Pin revocations (COW split / restore).
};

/// The sparse store proper. Indices are store-relative words ([0, size)).
/// Integrity failures never throw from the data path: read() reports them
/// through check_page_on_read() so the memory model can turn them into bus
/// errors and ledger entries.
class PagedStore {
 public:
  explicit PagedStore(usize size_words, std::string name = "paged_store");
  ~PagedStore();
  PagedStore(const PagedStore&) = delete;
  PagedStore& operator=(const PagedStore&) = delete;

  // Geometry -----------------------------------------------------------------
  [[nodiscard]] usize size_words() const noexcept { return size_words_; }
  [[nodiscard]] usize page_count() const noexcept { return pages_.size(); }
  [[nodiscard]] static constexpr usize page_of(usize idx) noexcept {
    return idx / kPageWords;
  }

  // Data path ----------------------------------------------------------------
  [[nodiscard]] bus::word read(usize idx);
  void write(usize idx, bus::word value);
  void load(usize at, std::span<const bus::word> data);
  [[nodiscard]] bus::word peek(usize idx) const;

  /// First-read integrity gate: verifies the page checksum the first time a
  /// page is read after attach/materialize. Returns false (and keeps
  /// returning false until the page is restored) on a mismatch — the caller
  /// decides whether that is a bus error, a ledger entry, or both.
  [[nodiscard]] bool check_page_on_read(usize page);

  // Sharing ------------------------------------------------------------------
  /// Adopts the image's pages at word offset `at` (must be page-aligned and
  /// in range). Whole pages are replaced: callers must only attach over
  /// untouched pages (see pages_untouched). Attached pages remember the
  /// image as their golden copy for scrub restore.
  void attach_image(const SharedImageRef& image, usize at);
  /// True if no page overlapping [at, at+len) has been materialized,
  /// attached, or written — i.e. attach_image there clobbers nothing.
  [[nodiscard]] bool pages_untouched(usize at, usize len) const;

  [[nodiscard]] bool page_resident(usize page) const;
  /// Resident and refcount-shared (image/pool/another store holds it too).
  [[nodiscard]] bool page_shared(usize page) const;
  [[nodiscard]] usize resident_pages() const noexcept { return resident_; }
  [[nodiscard]] usize shared_pages() const;
  [[nodiscard]] u64 resident_bytes() const noexcept {
    return static_cast<u64>(resident_) * kPageBytes;
  }

  // Integrity / fault hooks --------------------------------------------------
  /// Recomputes and compares the page checksum (non-resident pages are
  /// trivially clean). Does not change the first-read verification state.
  [[nodiscard]] bool verify_page(usize page) const;
  /// Fault-injection hook: XORs `mask` into the stored word *without*
  /// maintaining the checksum — modeling a storage upset the write path
  /// never saw. Splits shared pages (the golden copy must stay golden) but
  /// keeps the golden link so scrubbing can repair the damage.
  void corrupt_stored(usize idx, u32 mask);
  /// Re-silvers one page from its golden image copy; false if the page has
  /// no golden link (never attached, or diverged via API writes).
  bool restore_from_golden(usize page);
  [[nodiscard]] bool page_has_golden(usize page) const;
  /// Verify + repair: returns true if the page is clean or was restored.
  bool scrub_page(usize page);

  // DMI support --------------------------------------------------------------
  /// Read-only view of a resident page (null otherwise).
  [[nodiscard]] const bus::word* page_data(usize page) const;
  /// Writable view — only for resident *private* pages; handing out a
  /// writable pointer to a shared page would bypass COW.
  [[nodiscard]] bus::word* page_data_mutable(usize page);
  /// Marks a page as having an outstanding raw pointer; a later COW split or
  /// golden restore of any pinned page fires the revoke listener and clears
  /// every pin.
  void pin_page(usize page);
  void set_revoke_listener(std::function<void()> cb) {
    revoke_cb_ = std::move(cb);
  }

  [[nodiscard]] const PagedStoreStats& stats() const noexcept { return stats_; }

  /// Test knob: newly constructed stores materialize every page eagerly and
  /// attach_image copies instead of sharing — flat-memory semantics for the
  /// paged-vs-flat differential suite and benchmarks. Returns the previous
  /// value; does not affect stores that already exist.
  static bool debug_set_flat_backing(bool flat);
  [[nodiscard]] bool flat_backing() const noexcept { return flat_; }

 private:
  struct GoldenRef {
    SharedImageRef image;  ///< Null when the page has no golden copy.
    usize image_page = 0;
  };

  [[nodiscard]] usize page_index_checked(usize idx, const char* what) const;
  /// Ensures pages_[page] is resident and private, splitting or zero-filling
  /// as needed. API writes pass preserve_golden=false (divergence drops the
  /// golden link); fault and restore paths keep it.
  PageData& materialize(usize page, bool preserve_golden);
  void revoke_pins(usize page);

  std::string name_;
  usize size_words_;
  bool flat_;
  std::vector<PageRef> pages_;
  std::vector<GoldenRef> golden_;
  std::vector<u8> verified_;
  std::vector<u8> pinned_;
  usize resident_ = 0;
  bool any_pinned_ = false;
  std::function<void()> revoke_cb_;
  PagedStoreStats stats_;

  static bool flat_backing_;
};

}  // namespace adriatic::mem
