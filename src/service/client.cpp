#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace adriatic::service {

std::unique_ptr<ServiceClient> ServiceClient::connect(
    const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    log::error() << "service client: bad socket path '" << socket_path << "'";
    return nullptr;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    log::error() << "service client: socket(): " << std::strerror(errno);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    log::error() << "service client: cannot connect to '" << socket_path
                 << "': " << std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<ServiceClient>(new ServiceClient(fd));
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool ServiceClient::submit(u64 id, u64 spec, const std::string& kind,
                           const std::string& label, const ParamMap& params) {
  Request req;
  req.verb = Verb::kSubmit;
  req.id = id;
  req.spec = spec;
  req.kind = kind;
  req.label = label;
  req.params = encode_params(params);
  return send_raw(encode_request(req));
}

bool ServiceClient::watch(u64 id) {
  Request req;
  req.verb = Verb::kWatch;
  req.id = id;
  return send_raw(encode_request(req));
}

bool ServiceClient::stats(u64 id) {
  Request req;
  req.verb = Verb::kStats;
  req.id = id;
  return send_raw(encode_request(req));
}

bool ServiceClient::drain(u64 id) {
  Request req;
  req.verb = Verb::kDrain;
  req.id = id;
  return send_raw(encode_request(req));
}

bool ServiceClient::send_raw(const std::string& bytes) {
  if (fd_ < 0) return false;
  return write_all(fd_, bytes);
}

std::optional<Response> ServiceClient::next_response() {
  if (err_.has_value()) return std::nullopt;
  char buf[4096];
  for (;;) {
    while (auto ev = parser_.next()) {
      if (ev->error.has_value()) {
        err_ = ev->error;
        return std::nullopt;
      }
      const ResponseEvent rev = to_response(*ev->line);
      if (rev.error.has_value()) {
        err_ = rev.error;
        return std::nullopt;
      }
      return rev.response;
    }
    if (parser_.fatal()) return std::nullopt;
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) return std::nullopt;  // server closed
    parser_.feed(buf, static_cast<usize>(n));
  }
}

ServiceRunResult run_jobs_over_service(const std::string& socket_path,
                                       const std::vector<ServiceJob>& jobs) {
  ServiceRunResult result;
  auto client = ServiceClient::connect(socket_path);
  if (client == nullptr) {
    result.error = "cannot connect to '" + socket_path + "'";
    return result;
  }
  // Request id i+1 <-> jobs[i]; ids are per-connection so a plain counter
  // is enough.
  std::map<u64, usize> id_to_job;
  for (usize i = 0; i < jobs.size(); ++i) {
    const ServiceJob& job = jobs[i];
    const u64 id = static_cast<u64>(i) + 1;
    id_to_job[id] = i;
    if (!client->submit(id, job.spec, job.kind, job.label, job.params)) {
      result.error = "connection lost while submitting '" + job.label + "'";
      return result;
    }
    ++result.totals.service_requests;
  }
  usize outstanding = jobs.size();
  while (outstanding > 0) {
    const auto resp = client->next_response();
    if (!resp.has_value()) {
      if (client->wire_error().has_value())
        result.error = std::string("protocol violation from server: ") +
                       error_code_name(client->wire_error()->code);
      else
        result.error = strfmt("connection closed with %zu job(s) outstanding",
                              outstanding);
      return result;
    }
    switch (resp->type) {
      case ResponseType::kResult: {
        const auto it = id_to_job.find(resp->id);
        if (it == id_to_job.end()) continue;  // watcher traffic etc.
        const ServiceJob& job = jobs[it->second];
        campaign::JobStats stats = resp->stats;
        stats.index = job.index;
        stats.label = job.label;
        if (stats.from_cache) ++result.totals.dedup_hits;
        if (stats.quarantined && stats.quarantine_reason == "interrupted")
          result.interrupted = true;
        result.stats[job.index] = std::move(stats);
        --outstanding;
        break;
      }
      case ResponseType::kError: {
        const auto it = id_to_job.find(resp->id);
        if (result.error.empty())
          result.error = "server error '" +
                         std::string(error_code_name(resp->code)) +
                         "': " + resp->detail;
        if (it != id_to_job.end()) {
          // That job will never get a RESULT; give up on it but keep
          // collecting the rest.
          --outstanding;
        } else if (resp->id == 0) {
          // A connection-level error (framing): nothing further will
          // arrive.
          return result;
        }
        break;
      }
      case ResponseType::kOk:
      case ResponseType::kStats:
      case ResponseType::kDrained:
        break;  // acknowledgements; results are what we wait for
    }
  }
  result.ok = result.error.empty();
  return result;
}

}  // namespace adriatic::service
