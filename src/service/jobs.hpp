// Shared campaign job bodies for the socket service and the sweep examples.
//
// The server cannot receive closures over a socket, so every job a client
// may SUBMIT is a named *kind* plus a ParamMap; this header holds the
// concrete bodies behind those kinds. fault_sweep and dse_explorer call the
// same run_* functions directly in local mode, which is what makes a
// --server run's report byte-identical (modulo wall clock) to a local one:
// both paths execute this file, not parallel re-implementations.
//
// Spec-hash helpers mirror the examples' historical folds exactly, so a
// result cache or journal written by a local sweep is directly reusable by
// the server (and vice versa).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "campaign/campaign.hpp"
#include "dse/pareto.hpp"
#include "service/protocol.hpp"
#include "util/types.hpp"

namespace adriatic::service {

// -- Fault-injection sweep point (fault_sweep) -------------------------------

/// One point of the recovery-policy x fetch-error-rate x scheduler sweep.
/// `policy` is the drcf::RecoveryPolicy value (0 fail_fast, 1 retry_backoff,
/// 2 fallback); `throttle_ms` is a CI knob (widens crash/signal windows) and
/// deliberately not part of the spec hash.
struct FaultPointSpec {
  std::string label;
  u32 policy = 0;
  u32 rate_pct = 0;
  u64 plan_seed = 0;
  bool prefetch = false;
  u32 throttle_ms = 0;
};

/// Journal/cache identity; fold order matches fault_sweep's original
/// point_spec() byte for byte.
[[nodiscard]] u64 fault_point_spec_hash(const FaultPointSpec& spec);
[[nodiscard]] ParamMap fault_point_params(const FaultPointSpec& spec);
[[nodiscard]] std::optional<FaultPointSpec> fault_point_from_params(
    const std::string& label, const ParamMap& params);

struct FaultPointOutcome {
  bool ok = false;
  std::vector<std::string> row;  ///< Print-ready table cells.
};

/// Runs one sweep point (two-context DRCF under a seeded fetch-fault plan);
/// records kernel counters, fault ledger, prefetch stats, memory footprint
/// and the table row (user_data) into `ctx` when non-null.
FaultPointOutcome run_fault_point(const FaultPointSpec& spec,
                                  campaign::JobContext* ctx);

// -- DSE design point (dse_explorer) -----------------------------------------

/// One design point of the technology x slots x memory x scheduler sweep.
/// `tech` indexes the fixed technology table (0 virtex2pro_like,
/// 1 varicore_like, 2 morphosys_like).
struct DsePointSpec {
  std::string label;
  u32 tech = 0;
  u32 slots = 1;
  bool dedicated_link = false;
  bool prefetch = false;  ///< Hybrid prefetch into a 2-plane cache.
  bool loose = false;     ///< Loosely-timed mode (--loose).
  u32 quantum_ns = 0;     ///< 0 = kernel default quantum.
};

[[nodiscard]] const char* dse_tech_name(u32 tech_index);

/// Identity fold shared by every dse_explorer job (grid point, hardwired
/// reference, migration probe): label + timing axis, matching the example's
/// original point_spec() lambda.
[[nodiscard]] u64 dse_spec_hash(const std::string& label, bool loose,
                                u32 quantum_ns);
[[nodiscard]] ParamMap dse_point_params(const DsePointSpec& spec);
[[nodiscard]] std::optional<DsePointSpec> dse_point_from_params(
    const std::string& label, const ParamMap& params);

/// Outcome of any dse_explorer-style job; `row`/`point` feed the tool's
/// table and Pareto front. Travels inside JobStats::user_data via
/// pack_dse_outcome(), so results from other address spaces (forked worker,
/// cache hit, journal restore, service RESULT frame) reproduce tool output.
struct DseOutcome {
  bool ok = false;
  std::string error;
  std::vector<std::string> row;
  dse::DesignPoint point;
};

[[nodiscard]] std::string pack_dse_outcome(const DseOutcome& out);
[[nodiscard]] DseOutcome unpack_dse_outcome(const campaign::JobStats& stats);

DseOutcome run_dse_point(const DsePointSpec& spec, campaign::JobContext* ctx);
/// The all-hardwired reference architecture as its own job.
DseOutcome run_dse_hardwired(bool loose, u32 quantum_ns,
                             campaign::JobContext* ctx);
/// The two-fabric task-migration probe as its own job.
DseOutcome run_dse_migration_probe(bool loose, u32 quantum_ns,
                                   campaign::JobContext* ctx);

// -- Golden determinism job (tests) ------------------------------------------

/// The result-cache determinism job: a seeded 40-write Signal<u32> producer
/// with a trace-folding observer. Label convention "golden<seed>", spec
/// golden_spec_hash(seed). Records kernel counters, the fold digest and a
/// "fold\t<value>" user_data payload — no memory/fault blocks, so its
/// serialised stats are fully deterministic (wall clock aside).
[[nodiscard]] u64 golden_spec_hash(u64 seed);
void run_golden(u64 seed, u32 throttle_ms, campaign::JobContext& ctx);

// -- Kind registry -----------------------------------------------------------

/// A job body ready for CampaignRunner::submit.
using JobBody = std::function<void(campaign::JobContext&)>;
/// Builds a body from a SUBMIT's label + params; nullopt when the params do
/// not describe a valid job of this kind (server answers bad-request).
using JobBuilder =
    std::function<std::optional<JobBody>(const std::string& label,
                                         const ParamMap& params)>;

/// The kinds campaignd serves out of the box:
///   fault_point, dse_point, dse_hardwired, dse_migration_probe, golden.
[[nodiscard]] std::vector<std::pair<std::string, JobBuilder>> builtin_kinds();

}  // namespace adriatic::service
