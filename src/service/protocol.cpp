#include "service/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

#include "campaign/journal.hpp"
#include "util/strings.hpp"

namespace adriatic::service {

namespace {

using campaign::checksum_suffix;
using campaign::decode_field;
using campaign::encode_field;
using campaign::strip_checksum;

[[nodiscard]] u64 parse_u64(const std::string& s, int base = 10) {
  return std::strtoull(s.c_str(), nullptr, base);
}

/// Strict decimal parse: rejects empty, non-digit and overflowing strings,
/// so a garbage id never silently becomes a valid one.
[[nodiscard]] std::optional<u64> parse_dec(const std::string& s) {
  if (s.empty() || s.size() > 20) return std::nullopt;
  u64 v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const u64 next = v * 10 + static_cast<u64>(c - '0');
    if (next < v) return std::nullopt;
    v = next;
  }
  return v;
}

[[nodiscard]] std::optional<u64> parse_hex(const std::string& s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  u64 v = 0;
  for (const char c : s) {
    u64 d = 0;
    if (c >= '0' && c <= '9') d = static_cast<u64>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<u64>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') d = static_cast<u64>(c - 'A' + 10);
    else return std::nullopt;
    v = (v << 4) | d;
  }
  return v;
}

}  // namespace

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kTornLine: return "torn-line";
    case ErrorCode::kBadChecksum: return "bad-checksum";
    case ErrorCode::kOversizeFrame: return "oversize-frame";
    case ErrorCode::kUnknownVerb: return "unknown-verb";
    case ErrorCode::kStaleVersion: return "stale-version";
    case ErrorCode::kDuplicateId: return "duplicate-id";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kUnknownKind: return "unknown-kind";
    case ErrorCode::kShutdown: return "shutdown";
  }
  return "bad-request";
}

std::optional<ErrorCode> parse_error_code(const std::string& s) {
  for (const ErrorCode code :
       {ErrorCode::kTornLine, ErrorCode::kBadChecksum,
        ErrorCode::kOversizeFrame, ErrorCode::kUnknownVerb,
        ErrorCode::kStaleVersion, ErrorCode::kDuplicateId,
        ErrorCode::kBadRequest, ErrorCode::kUnknownKind, ErrorCode::kShutdown})
    if (s == error_code_name(code)) return code;
  return std::nullopt;
}

std::optional<std::string> WireLine::get(const std::string& key) const {
  for (const auto& [k, v] : fields)
    if (k == key) return v;
  return std::nullopt;
}

std::string encode_wire_line(const WireLine& line) {
  std::string content = line.verb;
  content += ' ';
  content += kProtocolVersion;
  for (const auto& [k, v] : line.fields)
    content += ' ' + k + '=' + encode_field(v);
  return content + checksum_suffix(content) + "\n";
}

WireEvent parse_wire_line(const std::string& raw) {
  WireEvent ev;
  if (raw.find(" cks=") == std::string::npos) {
    ev.error = {ErrorCode::kTornLine, "line has no checksum suffix"};
    return ev;
  }
  const auto content = strip_checksum(raw);
  if (!content.has_value()) {
    ev.error = {ErrorCode::kBadChecksum, "checksum mismatch"};
    return ev;
  }
  const std::vector<std::string> tok = split(*content, ' ');
  if (tok.size() < 2 || tok[0].empty()) {
    ev.error = {ErrorCode::kBadRequest, "missing verb or version token"};
    return ev;
  }
  if (tok[1] != kProtocolVersion) {
    ev.error = {ErrorCode::kStaleVersion,
                "version '" + tok[1] + "' is not " + kProtocolVersion};
    return ev;
  }
  WireLine line;
  line.verb = tok[0];
  for (usize i = 2; i < tok.size(); ++i) {
    const usize eq = tok[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      ev.error = {ErrorCode::kBadRequest, "malformed field '" + tok[i] + "'"};
      return ev;
    }
    line.add(tok[i].substr(0, eq), decode_field(tok[i].substr(eq + 1)));
  }
  ev.line = std::move(line);
  return ev;
}

std::optional<WireEvent> LineParser::next() {
  if (fatal_) return std::nullopt;
  for (;;) {
    const usize nl = buf_.find('\n');
    if (nl == std::string::npos) {
      if (buf_.size() > kMaxLineBytes) {
        // The line is already over budget with no newline in sight; there
        // is no trustworthy frame boundary to resynchronise on.
        fatal_ = true;
        WireEvent ev;
        ev.error = {ErrorCode::kOversizeFrame,
                    strfmt("line exceeds %zu bytes", kMaxLineBytes)};
        return ev;
      }
      return std::nullopt;
    }
    std::string raw = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    if (raw.empty()) continue;  // blank keepalive line
    if (raw.size() > kMaxLineBytes) {
      fatal_ = true;
      WireEvent ev;
      ev.error = {ErrorCode::kOversizeFrame,
                  strfmt("line exceeds %zu bytes", kMaxLineBytes)};
      return ev;
    }
    WireEvent ev = parse_wire_line(raw);
    if (ev.error.has_value() && is_fatal(ev.error->code)) fatal_ = true;
    return ev;
  }
}

namespace {

// Keys ride on the left of the token's first '='. encode_field keeps them
// free of spaces, but leaves '=' alone — escape it too so the separator is
// unambiguous (decode_field reverses any %XX).
std::string encode_param_key(const std::string& k) {
  std::string out;
  for (const char c : encode_field(k)) {
    if (c == '=') {
      out += "%3D";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string encode_params(const ParamMap& params) {
  std::string out;
  for (const auto& [k, v] : params) {
    if (!out.empty()) out += ' ';
    out += encode_param_key(k) + '=' + encode_field(v);
  }
  return out;
}

ParamMap decode_params(const std::string& encoded) {
  ParamMap out;
  for (const std::string& tok : split(encoded, ' ')) {
    const usize eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    out[decode_field(tok.substr(0, eq))] = decode_field(tok.substr(eq + 1));
  }
  return out;
}

std::string encode_request(const Request& req) {
  WireLine line;
  line.add("id", std::to_string(req.id));
  switch (req.verb) {
    case Verb::kSubmit:
      line.verb = "SUBMIT";
      line.add("spec", strfmt("%016llx",
                              static_cast<unsigned long long>(req.spec)));
      line.add("kind", req.kind);
      line.add("label", req.label);
      line.add("params", req.params);
      break;
    case Verb::kWatch: line.verb = "WATCH"; break;
    case Verb::kStats: line.verb = "STATS"; break;
    case Verb::kDrain: line.verb = "DRAIN"; break;
  }
  return encode_wire_line(line);
}

RequestEvent to_request(const WireLine& line) {
  RequestEvent ev;
  Request req;
  if (line.verb == "SUBMIT") req.verb = Verb::kSubmit;
  else if (line.verb == "WATCH") req.verb = Verb::kWatch;
  else if (line.verb == "STATS") req.verb = Verb::kStats;
  else if (line.verb == "DRAIN") req.verb = Verb::kDrain;
  else {
    ev.error = {ErrorCode::kUnknownVerb, "verb '" + line.verb + "'"};
    return ev;
  }
  const auto id = line.get("id");
  const auto id_val = id.has_value() ? parse_dec(*id) : std::nullopt;
  if (!id_val.has_value() || *id_val == 0) {
    ev.error = {ErrorCode::kBadRequest, "missing or malformed id"};
    return ev;
  }
  req.id = *id_val;
  if (req.verb == Verb::kSubmit) {
    const auto spec = line.get("spec");
    const auto spec_val = spec.has_value() ? parse_hex(*spec) : std::nullopt;
    const auto kind = line.get("kind");
    const auto label = line.get("label");
    if (!spec_val.has_value() || !kind.has_value() || kind->empty() ||
        !label.has_value() || label->empty()) {
      ev.error = {ErrorCode::kBadRequest,
                  "SUBMIT needs spec=<hex>, kind= and label="};
      return ev;
    }
    req.spec = *spec_val;
    req.kind = *kind;
    req.label = *label;
    req.params = line.get("params").value_or("");
  }
  ev.request = std::move(req);
  return ev;
}

std::string encode_ok(u64 id, u64 index, bool cached) {
  WireLine line;
  line.verb = "OK";
  line.add("id", std::to_string(id));
  line.add("index", std::to_string(index));
  line.add("cached", cached ? "1" : "0");
  return encode_wire_line(line);
}

std::string encode_result(u64 id, u64 spec, const campaign::JobStats& stats) {
  WireLine line;
  line.verb = "RESULT";
  line.add("id", std::to_string(id));
  line.add("spec", strfmt("%016llx", static_cast<unsigned long long>(spec)));
  line.add("index", std::to_string(stats.index));
  line.add("stats", campaign::encode_job_stats(stats));
  return encode_wire_line(line);
}

std::string encode_error(u64 id, ErrorCode code, const std::string& detail) {
  WireLine line;
  line.verb = "ERROR";
  line.add("id", std::to_string(id));
  line.add("code", error_code_name(code));
  line.add("detail", detail);
  return encode_wire_line(line);
}

std::string encode_stats_reply(
    u64 id, const std::vector<std::pair<std::string, std::string>>& fields) {
  WireLine line;
  line.verb = "STATS";
  line.add("id", std::to_string(id));
  for (const auto& [k, v] : fields) line.add(k, v);
  return encode_wire_line(line);
}

std::string encode_drained(u64 id) {
  WireLine line;
  line.verb = "DRAINED";
  line.add("id", std::to_string(id));
  return encode_wire_line(line);
}

ResponseEvent to_response(const WireLine& line) {
  ResponseEvent ev;
  Response resp;
  if (line.verb == "OK") resp.type = ResponseType::kOk;
  else if (line.verb == "RESULT") resp.type = ResponseType::kResult;
  else if (line.verb == "ERROR") resp.type = ResponseType::kError;
  else if (line.verb == "STATS") resp.type = ResponseType::kStats;
  else if (line.verb == "DRAINED") resp.type = ResponseType::kDrained;
  else {
    ev.error = {ErrorCode::kUnknownVerb, "verb '" + line.verb + "'"};
    return ev;
  }
  const auto id = line.get("id");
  if (!id.has_value()) {
    ev.error = {ErrorCode::kBadRequest, "missing id"};
    return ev;
  }
  resp.id = parse_u64(*id);
  switch (resp.type) {
    case ResponseType::kOk: {
      resp.index = parse_u64(line.get("index").value_or("0"));
      resp.cached = line.get("cached").value_or("0") == "1";
      break;
    }
    case ResponseType::kResult: {
      const auto spec = line.get("spec");
      const auto stats = line.get("stats");
      if (!spec.has_value() || !stats.has_value()) {
        ev.error = {ErrorCode::kBadRequest, "RESULT needs spec= and stats="};
        return ev;
      }
      resp.spec = parse_u64(*spec, 16);
      resp.index = parse_u64(line.get("index").value_or("0"));
      resp.stats = campaign::decode_job_stats(*stats);
      resp.stats.index = static_cast<usize>(resp.index);
      break;
    }
    case ResponseType::kError: {
      const auto code = line.get("code");
      const auto parsed =
          code.has_value() ? parse_error_code(*code) : std::nullopt;
      if (!parsed.has_value()) {
        ev.error = {ErrorCode::kBadRequest, "ERROR needs a known code="};
        return ev;
      }
      resp.code = *parsed;
      resp.detail = line.get("detail").value_or("");
      break;
    }
    case ResponseType::kStats: {
      for (const auto& [k, v] : line.fields)
        if (k != "id") resp.fields.emplace_back(k, v);
      break;
    }
    case ResponseType::kDrained: break;
  }
  ev.response = std::move(resp);
  return ev;
}

bool write_all(int fd, const std::string& data) {
  usize off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-stream must surface as a
    // failed write, not a process-killing SIGPIPE. Plain write() is the
    // fallback for non-socket fds (tests feed pipes through this).
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK)
      n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<usize>(n);
  }
  return true;
}

}  // namespace adriatic::service
