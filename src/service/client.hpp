// Thin client for the campaign service: a blocking line-framed connection
// to campaignd plus a convenience runner that submits a batch of job specs
// and collects their streamed results — the whole of what
// `fault_sweep --server` / `dse_explorer --server` need to behave exactly
// like a local sweep whose simulations happen elsewhere.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "service/protocol.hpp"

namespace adriatic::service {

class ServiceClient {
 public:
  /// Connects to campaignd's Unix-domain socket; null (with a log line) on
  /// failure.
  static std::unique_ptr<ServiceClient> connect(
      const std::string& socket_path);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Request senders; false when the connection is dead. Ids are caller-
  /// chosen, nonzero, unique per connection.
  bool submit(u64 id, u64 spec, const std::string& kind,
              const std::string& label, const ParamMap& params);
  bool watch(u64 id);
  bool stats(u64 id);
  bool drain(u64 id);
  /// Escape hatch for protocol tests: puts raw bytes on the wire verbatim.
  bool send_raw(const std::string& bytes);

  /// Blocks for the next response frame. nullopt on EOF or on a wire-layer
  /// violation — check wire_error() to tell the two apart. Malformed server
  /// frames (fatal or not) latch wire_error(): a client has no business
  /// trusting a server that miscodes frames.
  [[nodiscard]] std::optional<Response> next_response();

  [[nodiscard]] const std::optional<WireError>& wire_error() const noexcept {
    return err_;
  }
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}
  int fd_ = -1;
  LineParser parser_;
  std::optional<WireError> err_;
};

// -- Batch runner ------------------------------------------------------------

/// One job to run over the service; `index` is the caller's local campaign
/// index (the server assigns its own, which the runner maps back).
struct ServiceJob {
  usize index = 0;
  u64 spec = 0;
  std::string kind;
  std::string label;
  ParamMap params;
};

struct ServiceRunResult {
  bool ok = false;
  std::string error;  ///< First hard failure (connect/send/protocol).
  /// Results keyed by the caller's local index, with index/label already
  /// rewritten to local values; jobs the server errored on are absent.
  std::map<usize, campaign::JobStats> stats;
  /// requests = jobs submitted; dedup_hits = results the server served
  /// without simulating (JobStats::from_cache).
  campaign::ServiceTotals totals;
  bool interrupted = false;  ///< Some results came back quarantined
                             ///< "interrupted" (server was signal-stopped).
};

/// Submits every job over one connection and blocks until each has a RESULT
/// frame (or an ERROR frame / dead connection ends the run). Server-side
/// dedup is transparent: cache-served results arrive flagged from_cache.
[[nodiscard]] ServiceRunResult run_jobs_over_service(
    const std::string& socket_path, const std::vector<ServiceJob>& jobs);

}  // namespace adriatic::service
