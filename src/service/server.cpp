#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace adriatic::service {

using campaign::JobStats;

CampaignServer::CampaignServer(ServerOptions opt) : opt_(std::move(opt)) {
  kinds_ = builtin_kinds();
}

CampaignServer::~CampaignServer() {
  if (running_.load() || !stopped_.load()) stop();
}

void CampaignServer::register_kind(const std::string& name,
                                   JobBuilder builder) {
  for (auto& [existing, b] : kinds_) {
    if (existing == name) {
      b = std::move(builder);
      return;
    }
  }
  kinds_.emplace_back(name, std::move(builder));
}

bool CampaignServer::start() {
  if (running_.load()) return true;
  if (opt_.socket_path.empty()) {
    log::error() << "campaignd: no socket path configured";
    return false;
  }

  // Journal: resume pre-populates the session dedup map from the journal's
  // completed records, so a restarted server keeps serving the finished
  // prefix without re-simulating even with no result cache attached.
  if (!opt_.journal_path.empty()) {
    if (opt_.resume) {
      const auto state = campaign::read_journal(opt_.journal_path);
      if (!state.has_value()) {
        log::error() << "campaignd: cannot read journal '" << opt_.journal_path
                     << "'";
        return false;
      }
      for (const auto& [idx, planned] : state->planned)
        if (idx >= next_index_) next_index_ = idx + 1;
      for (const auto& [idx, stats] : state->completed) {
        const auto it = state->planned.find(idx);
        if (it != state->planned.end())
          finished_by_spec_[it->second.spec] = stats;
      }
      journal_ = campaign::CampaignJournal::append_to(opt_.journal_path);
    } else {
      journal_ = campaign::CampaignJournal::create(opt_.journal_path,
                                                   opt_.campaign_name);
    }
    if (journal_ == nullptr) {
      log::error() << "campaignd: cannot open journal '" << opt_.journal_path
                   << "'";
      return false;
    }
  }

  if (!opt_.cache_path.empty()) {
    cache_ = campaign::ResultCache::open(opt_.cache_path);
    if (cache_ == nullptr) {
      log::error() << "campaignd: cannot open cache '" << opt_.cache_path
                   << "'";
      return false;
    }
  }

  runner_ = std::make_unique<campaign::CampaignRunner>(
      opt_.threads != 0 ? opt_.threads : campaign::default_thread_count(),
      opt_.processes ? campaign::ExecutionMode::kProcesses
                     : campaign::ExecutionMode::kThreads);
  // The hook is the streaming point: it fires after the record commit
  // (futures resolve before it), on the worker thread, outside the runner's
  // locks — exactly what a push to a socket needs.
  runner_->set_completion_hook(
      [this](const JobStats& stats) { on_job_complete(stats); });
  runner_->enable_signal_stop();
  if (journal_ != nullptr) runner_->set_journal(journal_.get());

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof(addr.sun_path)) {
    log::error() << "campaignd: socket path too long: " << opt_.socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    log::error() << "campaignd: socket(): " << std::strerror(errno);
    return false;
  }
  ::unlink(opt_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    log::error() << "campaignd: cannot listen on '" << opt_.socket_path
                 << "': " << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  stopped_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void CampaignServer::accept_loop() {
  while (running_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++counters_.connections;
    }
    {
      std::lock_guard<std::mutex> lk(cmu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void CampaignServer::reader_loop(const std::shared_ptr<Connection>& conn) {
  LineParser parser;
  char buf[4096];
  bool fatal = false;
  while (!fatal) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // peer closed
    parser.feed(buf, static_cast<usize>(n));
    while (auto ev = parser.next()) {
      if (ev->error.has_value()) {
        // One structured ERROR frame per violation; framing violations
        // additionally end the connection (the stream past them is
        // untrustworthy — see protocol.hpp).
        send_error(conn, 0, ev->error->code, ev->error->detail);
        if (is_fatal(ev->error->code)) {
          fatal = true;
          break;
        }
        continue;
      }
      const RequestEvent rev = to_request(*ev->line);
      if (rev.error.has_value()) {
        // Best-effort id echo so the client can correlate the error.
        u64 id = 0;
        if (const auto raw = ev->line->get("id"); raw.has_value())
          id = std::strtoull(raw->c_str(), nullptr, 10);
        send_error(conn, id, rev.error->code, rev.error->detail);
        continue;
      }
      handle_request(conn, *rev.request);
    }
  }
  // Closing under the write lock keeps the completion hook from racing a
  // push onto a recycled fd number.
  std::lock_guard<std::mutex> lk(conn->write_mu);
  conn->open.store(false);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void CampaignServer::handle_request(const std::shared_ptr<Connection>& conn,
                                    const Request& req) {
  // Request ids are the client's correlation handles; reusing one would
  // make its response stream ambiguous, so the reuse itself is the error.
  if (!conn->seen_ids.insert(req.id).second) {
    send_error(conn, req.id, ErrorCode::kDuplicateId,
               strfmt("request id %llu already used on this connection",
                      static_cast<unsigned long long>(req.id)));
    return;
  }
  switch (req.verb) {
    case Verb::kSubmit:
      handle_submit(conn, req);
      return;
    case Verb::kWatch:
      conn->watching.store(true);
      send_frame(conn, encode_ok(req.id, 0, false));
      return;
    case Verb::kStats: {
      ServerCounters c;
      usize threads = 0;
      bool processes = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        c = counters_;
      }
      if (runner_ != nullptr) {
        threads = runner_->thread_count();
        processes = runner_->mode() == campaign::ExecutionMode::kProcesses;
      }
      std::vector<std::pair<std::string, std::string>> fields;
      fields.emplace_back("campaign", opt_.campaign_name);
      fields.emplace_back("threads", std::to_string(threads));
      fields.emplace_back("mode", processes ? "processes" : "threads");
      fields.emplace_back("connections", std::to_string(c.connections));
      fields.emplace_back("requests", std::to_string(c.requests));
      fields.emplace_back("dedup_hits", std::to_string(c.dedup_hits));
      fields.emplace_back("jobs_done", std::to_string(c.jobs_done));
      fields.emplace_back("jobs_failed", std::to_string(c.jobs_failed));
      fields.emplace_back("errors", std::to_string(c.errors));
      send_frame(conn, encode_stats_reply(req.id, fields));
      return;
    }
    case Verb::kDrain: {
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_drain_.wait(lk, [this] {
          return pending_.empty() || shutting_down_.load();
        });
      }
      send_frame(conn, encode_drained(req.id));
      return;
    }
  }
}

void CampaignServer::handle_submit(const std::shared_ptr<Connection>& conn,
                                   const Request& req) {
  if (shutting_down_.load()) {
    send_error(conn, req.id, ErrorCode::kShutdown,
               "server is stopping; job not accepted");
    return;
  }
  const JobBuilder* builder = nullptr;
  for (const auto& [name, b] : kinds_) {
    if (name == req.kind) {
      builder = &b;
      break;
    }
  }
  if (builder == nullptr) {
    send_error(conn, req.id, ErrorCode::kUnknownKind,
               "no job builder registered for kind '" + req.kind + "'");
    return;
  }
  auto body = (*builder)(req.label, decode_params(req.params));
  if (!body.has_value()) {
    send_error(conn, req.id, ErrorCode::kBadRequest,
               "invalid params for kind '" + req.kind + "'");
    return;
  }

  std::optional<JobStats> served;
  usize index = 0;
  bool fresh = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (shutting_down_.load()) {
      lk.unlock();
      send_error(conn, req.id, ErrorCode::kShutdown,
                 "server is stopping; job not accepted");
      return;
    }
    ++counters_.requests;
    // Dedup before any simulation: session-finished results first, then the
    // cross-run cache, then attach to an identical in-flight job.
    const auto fin = finished_by_spec_.find(req.spec);
    if (fin != finished_by_spec_.end()) {
      served = fin->second;
    } else if (cache_ != nullptr) {
      served = cache_->lookup(req.spec);
    }
    if (served.has_value()) {
      index = next_index_++;
      served->index = index;
      served->label = req.label;
      served->from_cache = true;
      ++counters_.dedup_hits;
      if (journal_ != nullptr) journal_->record_cache_hit(req.spec);
    } else if (const auto inflight = pending_by_spec_.find(req.spec);
               inflight != pending_by_spec_.end()) {
      // Same spec already simulating: subscribe this client to that job's
      // completion rather than running it twice.
      index = inflight->second;
      pending_[index].subscribers.push_back({conn, req.id});
      ++counters_.dedup_hits;
      if (journal_ != nullptr) journal_->record_cache_hit(req.spec);
      lk.unlock();
      send_frame(conn, encode_ok(req.id, static_cast<u64>(index), true));
      return;
    } else {
      fresh = true;
      index = next_index_++;
      pending_[index] = PendingJob{req.spec, req.label, {{conn, req.id}}};
      pending_by_spec_[req.spec] = index;
      if (journal_ != nullptr)
        journal_->record_planned(index, req.spec, req.label);
    }
  }

  if (served.has_value()) {
    // Cache hit: OK + RESULT immediately, no worker involved.
    send_frame(conn, encode_ok(req.id, static_cast<u64>(index), true));
    send_frame(conn, encode_result(req.id, req.spec, *served));
    broadcast_result(req.spec, *served, conn.get());
    return;
  }
  if (fresh) {
    campaign::JobOptions o;
    o.stats_index = index;
    o.spec = req.spec;
    o.max_attempts = opt_.max_attempts;
    o.wall_timeout_seconds = opt_.wall_timeout_seconds;
    o.heartbeat_timeout_seconds = opt_.heartbeat_timeout_seconds;
    // The future is deliberately dropped: failures come back through the
    // committed JobStats (failed/quarantined) and stream out via the
    // completion hook like any other result.
    (void)runner_->submit(req.label, o,
                          [body = std::move(*body)](campaign::JobContext& ctx) {
                            body(ctx);
                          });
    send_frame(conn, encode_ok(req.id, static_cast<u64>(index), false));
  }
}

void CampaignServer::on_job_complete(const JobStats& stats) {
  std::vector<Subscriber> subs;
  u64 spec = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = pending_.find(stats.index);
    if (it != pending_.end()) {
      spec = it->second.spec;
      subs = std::move(it->second.subscribers);
      pending_by_spec_.erase(it->second.spec);
      pending_.erase(it);
    }
    if (stats.done && !stats.failed) {
      ++counters_.jobs_done;
      finished_by_spec_[spec] = stats;
    } else {
      ++counters_.jobs_failed;
    }
    // store() itself refuses unfinished/failed/quarantined records.
    if (cache_ != nullptr) cache_->store(spec, stats);
    if (pending_.empty()) cv_drain_.notify_all();
  }
  const Connection* first = nullptr;
  for (const auto& sub : subs) {
    send_frame(sub.conn, encode_result(sub.request_id, spec, stats));
    if (first == nullptr) first = sub.conn.get();
  }
  broadcast_result(spec, stats, first);
}

void CampaignServer::send_frame(const std::shared_ptr<Connection>& conn,
                                const std::string& frame) {
  std::lock_guard<std::mutex> lk(conn->write_mu);
  if (!conn->open.load() || conn->fd < 0) return;
  if (!write_all(conn->fd, frame)) conn->open.store(false);
}

void CampaignServer::send_error(const std::shared_ptr<Connection>& conn,
                                u64 id, ErrorCode code,
                                const std::string& detail) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++counters_.errors;
  }
  send_frame(conn, encode_error(id, code, detail));
}

void CampaignServer::broadcast_result(u64 spec, const JobStats& stats,
                                      const Connection* except) {
  std::vector<std::shared_ptr<Connection>> watchers;
  {
    std::lock_guard<std::mutex> lk(cmu_);
    for (const auto& conn : conns_)
      if (conn->watching.load() && conn->open.load() && conn.get() != except)
        watchers.push_back(conn);
  }
  // Watcher frames reuse id=0: a watcher subscribed to everything, so per-
  // request correlation does not apply.
  for (const auto& conn : watchers)
    send_frame(conn, encode_result(0, spec, stats));
}

void CampaignServer::stop() {
  if (stopped_.exchange(true)) return;
  shutting_down_.store(true);
  {
    // Barrier: any SUBMIT that saw shutting_down_ == false has finished its
    // dedup/enqueue critical section once we pass this lock.
    std::lock_guard<std::mutex> lk(mu_);
    cv_drain_.notify_all();
  }
  running_.store(false);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain while connections are still up, so in-flight results (including
  // signal-stop "interrupted" quarantines) stream out to their clients.
  if (runner_ != nullptr) runner_->wait_idle();
  if (journal_ != nullptr) journal_->flush();
  {
    std::lock_guard<std::mutex> lk(cmu_);
    for (const auto& conn : conns_) {
      std::lock_guard<std::mutex> wlk(conn->write_mu);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lk(cmu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns)
    if (conn->reader.joinable()) conn->reader.join();
  // A reader may have raced one last SUBMIT past the first drain; with all
  // readers joined this second pass is definitive.
  if (runner_ != nullptr) runner_->wait_idle();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(opt_.socket_path.c_str());
  runner_.reset();
  if (journal_ != nullptr) journal_->flush();
}

int CampaignServer::serve() {
  if (!start()) return 2;
  {
    std::unique_lock<std::mutex> lk(smu_);
    while (!shutdown_requested_ && !campaign::signal_stop_requested())
      scv_.wait_for(lk, std::chrono::milliseconds(100));
  }
  const bool signalled = campaign::signal_stop_requested();
  stop();
  return signalled ? 130 : 0;
}

void CampaignServer::request_shutdown() {
  {
    std::lock_guard<std::mutex> lk(smu_);
    shutdown_requested_ = true;
  }
  scv_.notify_all();
}

ServerCounters CampaignServer::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

}  // namespace adriatic::service
