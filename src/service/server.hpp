// campaignd: a single-daemon campaign server on a Unix-domain socket.
//
// One process owns the CampaignRunner, the write-ahead journal and the
// digest-keyed result cache; any number of clients connect, SUBMIT job specs
// (kind + ParamMap, see service/jobs.hpp) and stream back per-job RESULT
// frames as workers finish them. Deduplication happens server-side before
// any simulation: a spec already in the result cache — or already finished
// this session, or currently in flight — is served without touching a
// worker, so N clients sweeping the same grid cost one simulation per
// point.
//
// Concurrency model: one accept thread, one reader thread per connection,
// results pushed from the runner's completion hook (worker threads). Every
// frame is sent with one write under the connection's write mutex, so
// concurrent pushes never interleave mid-frame. Framing violations close
// the connection after one structured ERROR frame; semantic errors are
// answered and the connection keeps serving (see service/protocol.hpp).
//
// Graceful stop: SIGINT/SIGTERM (via campaign::install_stop_signal_handlers
// + serve()) broadcast request_stop() to every guarded simulation through
// the runner's watchdog; in-flight jobs are journaled as interrupted, their
// RESULT frames still stream out, and serve() returns 130.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "campaign/result_cache.hpp"
#include "service/jobs.hpp"
#include "service/protocol.hpp"

namespace adriatic::service {

struct ServerOptions {
  std::string socket_path;
  /// Worker threads; 0 = campaign::default_thread_count().
  usize threads = 0;
  /// Fork one child per job attempt (crash containment); degrades to
  /// threads where fork is unusable, like the sweep tools.
  bool processes = false;
  /// Campaign name written into the journal header and STATS replies.
  std::string campaign_name = "campaignd";
  std::string journal_path;  ///< Empty = no journal.
  bool resume = false;       ///< Append to an existing journal.
  std::string cache_path;    ///< Empty = no cross-run result cache.
  /// Per-job robustness knobs, applied to every SUBMIT.
  u32 max_attempts = 2;
  double wall_timeout_seconds = 60.0;
  double heartbeat_timeout_seconds = 10.0;
};

/// Monotonic server counters, surfaced by STATS frames and counters().
struct ServerCounters {
  u64 connections = 0;  ///< Connections accepted over the lifetime.
  u64 requests = 0;     ///< SUBMITs accepted (dedup-served ones included).
  u64 dedup_hits = 0;   ///< SUBMITs served without a fresh simulation.
  u64 jobs_done = 0;    ///< Fresh jobs that committed a done record.
  u64 jobs_failed = 0;  ///< Fresh jobs that failed or quarantined.
  u64 errors = 0;       ///< ERROR frames sent.
};

class CampaignServer {
 public:
  explicit CampaignServer(ServerOptions opt);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Registers a job kind; must be called before start(). Later
  /// registrations of the same name win.
  void register_kind(const std::string& name, JobBuilder builder);

  /// Binds the socket, spins up the runner and the accept thread. False
  /// (with a log line) on bind/journal/cache errors.
  [[nodiscard]] bool start();

  /// Graceful stop: refuse new SUBMITs, drain the runner (in-flight jobs
  /// finish or quarantine as interrupted), flush the journal, close every
  /// connection and remove the socket. Idempotent.
  void stop();

  /// start() + block until request_shutdown() or a SIGINT/SIGTERM stop
  /// (campaign::install_stop_signal_handlers must be installed by the
  /// caller), then stop(). Returns 0 on a requested shutdown, 130 on a
  /// signal stop, 2 when start() fails.
  int serve();

  /// Unblocks serve() for a clean exit (tests, DRAIN-then-quit tooling).
  void request_shutdown();

  [[nodiscard]] ServerCounters counters() const;
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return opt_.socket_path;
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread reader;
    std::mutex write_mu;        ///< One frame per write_all(), never torn.
    std::set<u64> seen_ids;     ///< Duplicate-id detection, per connection.
    std::atomic<bool> watching{false};
    std::atomic<bool> open{true};
  };

  /// Who to notify when job `index` commits.
  struct Subscriber {
    std::shared_ptr<Connection> conn;
    u64 request_id = 0;
  };
  struct PendingJob {
    u64 spec = 0;
    std::string label;
    std::vector<Subscriber> subscribers;
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void handle_request(const std::shared_ptr<Connection>& conn,
                      const Request& req);
  void handle_submit(const std::shared_ptr<Connection>& conn,
                     const Request& req);
  /// Runner completion hook (worker thread): cache the record, stream
  /// RESULT frames to the submitters and watchers, retire the pending slot.
  void on_job_complete(const campaign::JobStats& stats);
  /// Sends one frame under the connection's write lock; a failed write
  /// marks the connection closed (the reader notices on its next read).
  void send_frame(const std::shared_ptr<Connection>& conn,
                  const std::string& frame);
  void send_error(const std::shared_ptr<Connection>& conn, u64 id,
                  ErrorCode code, const std::string& detail);
  /// RESULT to every WATCHing connection (submitters excluded — they get
  /// their own frame keyed by their request id).
  void broadcast_result(u64 spec, const campaign::JobStats& stats,
                        const Connection* except);

  ServerOptions opt_;
  std::vector<std::pair<std::string, JobBuilder>> kinds_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> stopped_{false};

  std::unique_ptr<campaign::CampaignJournal> journal_;
  std::unique_ptr<campaign::ResultCache> cache_;
  std::unique_ptr<campaign::CampaignRunner> runner_;

  mutable std::mutex mu_;  ///< Guards jobs state + counters.
  std::condition_variable cv_drain_;
  usize next_index_ = 0;
  std::map<usize, PendingJob> pending_;      ///< In-flight, by index.
  std::map<u64, usize> pending_by_spec_;     ///< Spec -> in-flight index.
  std::map<u64, campaign::JobStats> finished_by_spec_;  ///< Session dedup.
  ServerCounters counters_;

  std::mutex cmu_;  ///< Guards conns_.
  std::vector<std::shared_ptr<Connection>> conns_;

  std::mutex smu_;  ///< serve() wakeup.
  std::condition_variable scv_;
  bool shutdown_requested_ = false;
};

}  // namespace adriatic::service
