// Wire protocol for the campaign simulation service (campaignd).
//
// The socket carries newline-framed text lines built from the campaign
// journal's wire helpers, so there is exactly one way any adriatic component
// serialises a JobStats or a string field — journal D records, worker pipe
// 'R' frames, result-cache E lines and service frames all share the codec in
// campaign/journal.hpp.
//
// Line grammar (one request or response per line):
//   <VERB> v1 key=value key=value ... cks=<fnv1a_hex>\n
// Values are percent-encoded (journal encode_field), so every token stays
// free of spaces/newlines; ` cks=` is the journal's checksum_suffix over the
// preceding content. A line longer than kMaxLineBytes is a framing
// violation.
//
// Requests (client -> server):
//   SUBMIT v1 id=<dec> spec=<hex16> kind=<enc> label=<enc> params=<enc>
//   WATCH  v1 id=<dec>                -- subscribe to every finished result
//   STATS  v1 id=<dec>                -- server counters snapshot
//   DRAIN  v1 id=<dec>                -- reply once no job is in flight
// `params` is an encode_params() map (the job kind's constructor inputs);
// `spec` is the journal's spec_hash identity used for dedup and journaling.
//
// Responses (server -> client):
//   OK      v1 id=<dec> index=<dec> cached=<0|1>
//   RESULT  v1 id=<dec> spec=<hex16> index=<dec> stats=<enc tail>
//   ERROR   v1 id=<dec> code=<token> detail=<enc>
//   STATS   v1 id=<dec> requests=... dedup_hits=... ...
//   DRAINED v1 id=<dec>
// `stats` is the journal's encode_job_stats() tail, percent-encoded as one
// field; a cache-served result carries cached=1 inside the tail
// (JobStats::from_cache) and never touched a worker.
//
// Error handling mirrors worker_pool's FrameDecoder: framing violations
// (torn line, bad checksum, oversize frame) latch the parser — bytes past
// the violation cannot be trusted, so the connection is declared dead after
// one structured ERROR frame. Semantic violations (unknown verb, stale
// version, duplicate request id, bad request, unknown kind) are answered
// with an ERROR frame and the connection keeps serving. Nothing is ever
// silently dropped.
#pragma once

#include <optional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "campaign/campaign.hpp"
#include "util/types.hpp"

namespace adriatic::service {

inline constexpr char kProtocolVersion[] = "v1";
/// Upper bound on one line (request or response) including its checksum; a
/// longer line means the stream is corrupt or hostile, not that a giant
/// allocation is pending.
inline constexpr usize kMaxLineBytes = 1u << 20;

// -- Structured errors -------------------------------------------------------

enum class ErrorCode {
  kTornLine,      ///< Line has no ` cks=` suffix (torn mid-write).
  kBadChecksum,   ///< Suffix present but does not match the content.
  kOversizeFrame, ///< Line exceeds kMaxLineBytes before its newline.
  kUnknownVerb,   ///< First token is not a known request/response verb.
  kStaleVersion,  ///< Version token is not kProtocolVersion.
  kDuplicateId,   ///< Request id already used on this connection.
  kBadRequest,    ///< Missing or malformed fields.
  kUnknownKind,   ///< SUBMIT kind has no registered job builder.
  kShutdown,      ///< Server is stopping; the request was not accepted.
};

/// Stable wire token for `code=` fields ("torn-line", "bad-checksum", ...).
[[nodiscard]] const char* error_code_name(ErrorCode code) noexcept;
[[nodiscard]] std::optional<ErrorCode> parse_error_code(const std::string& s);

/// True for the framing violations that latch a parser (the stream past the
/// violation is untrustworthy); false for semantic errors the connection
/// survives.
[[nodiscard]] constexpr bool is_fatal(ErrorCode code) noexcept {
  return code == ErrorCode::kTornLine || code == ErrorCode::kBadChecksum ||
         code == ErrorCode::kOversizeFrame;
}

struct WireError {
  ErrorCode code = ErrorCode::kBadRequest;
  std::string detail;
};

// -- Line codec --------------------------------------------------------------

/// One decoded protocol line: the verb plus ordered key=value fields
/// (values already percent-decoded).
struct WireLine {
  std::string verb;
  std::vector<std::pair<std::string, std::string>> fields;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  void add(std::string key, std::string value) {
    fields.emplace_back(std::move(key), std::move(value));
  }
};

/// Serialises a line: "<verb> v1 k=enc(v) ..." + checksum suffix + '\n'.
[[nodiscard]] std::string encode_wire_line(const WireLine& line);

/// Exactly one of `line` / `error` is set.
struct WireEvent {
  std::optional<WireLine> line;
  std::optional<WireError> error;
};

/// Parses one newline-stripped raw line: checksum verification (torn-line /
/// bad-checksum), version check (stale-version), field splitting
/// (bad-request). Verb validity is the request/response layer's business.
[[nodiscard]] WireEvent parse_wire_line(const std::string& raw);

/// Incremental line parser fed from read() chunks, modeled on worker_pool's
/// FrameDecoder: next() yields one event per complete line; a framing
/// violation (torn line, bad checksum, oversize) is reported once and then
/// latches fatal() — the stream is unrecoverable past it. Blank lines are
/// ignored (keepalive). Feeding arbitrary bytes is safe: every complete line
/// yields exactly one event (a parsed line or a typed error), never a crash
/// or a silent drop.
class LineParser {
 public:
  void feed(const char* data, usize n) {
    if (!fatal_) buf_.append(data, n);
  }
  [[nodiscard]] std::optional<WireEvent> next();
  [[nodiscard]] bool fatal() const noexcept { return fatal_; }

 private:
  std::string buf_;
  bool fatal_ = false;
};

// -- Job parameter maps ------------------------------------------------------

/// Key->value job parameters, serialised deterministically (std::map order)
/// as "k=enc(v) k=enc(v)" and carried inside a SUBMIT's single `params`
/// field (the whole string is percent-encoded again at the line layer).
using ParamMap = std::map<std::string, std::string>;

[[nodiscard]] std::string encode_params(const ParamMap& params);
[[nodiscard]] ParamMap decode_params(const std::string& encoded);

// -- Requests ----------------------------------------------------------------

enum class Verb { kSubmit, kWatch, kStats, kDrain };

struct Request {
  Verb verb = Verb::kStats;
  u64 id = 0;  ///< Client-chosen, nonzero, unique per connection.
  // SUBMIT only:
  u64 spec = 0;        ///< spec_hash identity (dedup + journal key).
  std::string kind;    ///< Registered job-builder name.
  std::string label;   ///< Job label (journal P record, JobStats::label).
  std::string params;  ///< encode_params() payload for the builder.
};

[[nodiscard]] std::string encode_request(const Request& req);

/// Exactly one of `request` / `error` is set.
struct RequestEvent {
  std::optional<Request> request;
  std::optional<WireError> error;
};

/// WireLine -> Request (unknown-verb / bad-request on violation). Duplicate
/// id detection is connection state, handled above this layer.
[[nodiscard]] RequestEvent to_request(const WireLine& line);

// -- Responses ---------------------------------------------------------------

enum class ResponseType { kOk, kResult, kError, kStats, kDrained };

struct Response {
  ResponseType type = ResponseType::kOk;
  u64 id = 0;
  // kOk / kResult:
  u64 index = 0;        ///< Server-side campaign index.
  bool cached = false;  ///< kOk: the result will come from the cache.
  // kResult:
  u64 spec = 0;
  campaign::JobStats stats;
  // kError:
  ErrorCode code = ErrorCode::kBadRequest;
  std::string detail;
  // kStats: raw counter fields, in wire order.
  std::vector<std::pair<std::string, std::string>> fields;
};

[[nodiscard]] std::string encode_ok(u64 id, u64 index, bool cached);
[[nodiscard]] std::string encode_result(u64 id, u64 spec,
                                        const campaign::JobStats& stats);
[[nodiscard]] std::string encode_error(u64 id, ErrorCode code,
                                       const std::string& detail);
[[nodiscard]] std::string encode_stats_reply(
    u64 id, const std::vector<std::pair<std::string, std::string>>& fields);
[[nodiscard]] std::string encode_drained(u64 id);

/// Exactly one of `response` / `error` is set.
struct ResponseEvent {
  std::optional<Response> response;
  std::optional<WireError> error;
};

[[nodiscard]] ResponseEvent to_response(const WireLine& line);

// -- Socket helper -----------------------------------------------------------

/// write() the whole buffer, retrying on EINTR/short writes. One call per
/// frame (under the connection's write lock) keeps frames atomic on the
/// wire. Returns false on a hard error (EPIPE, closed fd).
bool write_all(int fd, const std::string& data);

}  // namespace adriatic::service
