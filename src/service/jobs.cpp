#include "service/jobs.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "accel/accel_lib.hpp"
#include "bus/bus_lib.hpp"
#include "campaign/journal.hpp"
#include "conformance/digest.hpp"
#include "conformance/migration_harness.hpp"
#include "drcf/drcf_lib.hpp"
#include "estimate/area.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "transform/transform.hpp"
#include "util/random.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace adriatic::service {

using namespace kern::literals;

namespace {

/// Strict decimal u64 for ParamMap fields: a present-but-garbage value must
/// fail the builder, not silently become 0.
bool param_u64(const ParamMap& params, const std::string& key, u64& out) {
  const auto it = params.find(key);
  if (it == params.end()) return true;  // absent keeps the default
  const std::string& s = it->second;
  if (s.empty() || s.size() > 20) return false;
  u64 v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const u64 next = v * 10 + static_cast<u64>(c - '0');
    if (next < v) return false;
    v = next;
  }
  out = v;
  return true;
}

bool param_u32(const ParamMap& params, const std::string& key, u32& out) {
  u64 v = out;
  if (!param_u64(params, key, v) || v > 0xffffffffULL) return false;
  out = static_cast<u32>(v);
  return true;
}

bool param_bool(const ParamMap& params, const std::string& key, bool& out) {
  const auto it = params.find(key);
  if (it == params.end()) return true;
  if (it->second == "1") out = true;
  else if (it->second == "0") out = false;
  else return false;
  return true;
}

}  // namespace

// -- Fault-injection sweep point ---------------------------------------------

namespace {

constexpr int kFaultSteps = 24;
constexpr u64 kConfigWords = 64;
constexpr bus::addr_t kCfgBase = 0x10000;
constexpr bus::addr_t kCtxBase[2] = {0x100, 0x200};
constexpr u32 kCtxWords = 16;

}  // namespace

u64 fault_point_spec_hash(const FaultPointSpec& spec) {
  u64 p = static_cast<u64>(spec.policy);
  p = p * 1099511628211ULL + spec.rate_pct;
  p = p * 1099511628211ULL + spec.plan_seed;
  p = p * 1099511628211ULL + (spec.prefetch ? 1 : 0);
  return campaign::spec_hash(spec.label, p);
}

ParamMap fault_point_params(const FaultPointSpec& spec) {
  ParamMap p;
  p["policy"] = std::to_string(spec.policy);
  p["rate_pct"] = std::to_string(spec.rate_pct);
  p["plan_seed"] = std::to_string(spec.plan_seed);
  p["prefetch"] = spec.prefetch ? "1" : "0";
  if (spec.throttle_ms > 0) p["throttle_ms"] = std::to_string(spec.throttle_ms);
  return p;
}

std::optional<FaultPointSpec> fault_point_from_params(const std::string& label,
                                                      const ParamMap& params) {
  FaultPointSpec spec;
  spec.label = label;
  if (!param_u32(params, "policy", spec.policy) || spec.policy > 2 ||
      !param_u32(params, "rate_pct", spec.rate_pct) || spec.rate_pct > 100 ||
      !param_u64(params, "plan_seed", spec.plan_seed) ||
      !param_bool(params, "prefetch", spec.prefetch) ||
      !param_u32(params, "throttle_ms", spec.throttle_ms))
    return std::nullopt;
  return spec;
}

FaultPointOutcome run_fault_point(const FaultPointSpec& spec,
                                  campaign::JobContext* ctx) {
  FaultPointOutcome out;
  // Deliberate slow-down used by crash/signal tests to widen their race
  // windows; 0 (the default) skips it entirely.
  if (spec.throttle_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.throttle_ms));
  kern::Simulation sim;
  kern::Module top(sim, "top");

  bus::BusConfig bus_cfg;
  bus_cfg.cycle_time = 10_ns;
  bus_cfg.split_transactions = true;
  bus::Bus sys_bus(top, "bus", bus_cfg);
  mem::Memory cfg_mem(top, "cfg_mem", kCfgBase, 4096);
  mem::Memory ctx_mem0(top, "ctx_mem0", kCtxBase[0], kCtxWords);
  mem::Memory ctx_mem1(top, "ctx_mem1", kCtxBase[1], kCtxWords);

  drcf::DrcfConfig dc;
  dc.technology = drcf::varicore_like();
  dc.technology.per_switch_overhead = kern::Time::zero();
  dc.slots = 1;  // ping-pong => every step reconfigures
  dc.recovery.policy = static_cast<drcf::RecoveryPolicy>(spec.policy);
  dc.recovery.max_attempts = 4;
  dc.recovery.backoff = 50_ns;
  if (dc.recovery.policy == drcf::RecoveryPolicy::kFallbackContext)
    dc.recovery.fallback_context = 0;
  if (spec.prefetch) {
    dc.prefetch.policy = drcf::PrefetchPolicy::kHybrid;
    dc.prefetch.cache_slots = 2;
    dc.prefetch.static_next = {1, 0};  // the driver's ping-pong, exactly
  }
  if (spec.rate_pct > 0) {
    fault::FaultRule rule;
    rule.rate = spec.rate_pct / 100.0;
    rule.kind = fault::FaultKind::kError;
    rule.reads_only = true;
    dc.fetch_faults.seed = spec.plan_seed;
    dc.fetch_faults.rules.push_back(rule);
  }
  drcf::Drcf fabric(top, "drcf", dc);

  // Synthetic bitstreams + armed integrity check, as elaborate.cpp does it.
  // Each context's bitstream sits at a page-aligned offset (0 and 0x400 =
  // 1024 words), so the images intern once process-wide and every job in
  // the sweep shares the same two golden pages copy-on-write.
  for (usize c = 0; c < 2; ++c) {
    const bus::addr_t base = kCfgBase + static_cast<bus::addr_t>(c) * 0x400;
    const usize id = fabric.add_context(
        c == 0 ? static_cast<bus::BusSlaveIf&>(ctx_mem0) : ctx_mem1,
        {.config_address = base, .size_words = kConfigWords, .gates = 10'000});
    const std::vector<bus::word> bits(
        kConfigWords, static_cast<bus::word>(0xC0DE0000u | c));
    u64 digest = drcf::kConfigDigestSeed;
    for (u64 w = 0; w < kConfigWords; ++w)
      digest = drcf::config_digest_step(digest, bits[w]);
    cfg_mem.attach_image(mem::ImageRegistry::instance().intern(bits), base);
    fabric.set_expected_digest(id, digest);
  }
  fabric.mst_port.bind(sys_bus);
  sys_bus.bind_slave(cfg_mem);
  sys_bus.bind_slave(fabric);

  int ok_steps = 0;
  top.spawn_thread("driver", [&] {
    for (int i = 0; i < kFaultSteps; ++i) {
      const bus::addr_t base = kCtxBase[i % 2];
      const auto off = static_cast<bus::addr_t>(i % kCtxWords);
      bus::word v = static_cast<bus::word>(0x5000 + i);
      bus::word r = 0;
      if (sys_bus.write(base + off, &v) == bus::BusStatus::kOk &&
          sys_bus.read(base + off, &r) == bus::BusStatus::kOk)
        ++ok_steps;
    }
  });
  // The digest makes each job's schedule comparable across runs — it is what
  // --verify-resume checks a resumed sweep against.
  conformance::TraceDigest digest;
  sim.set_observer(&digest);
  if (ctx != nullptr) {
    // The guard is how the wall-clock watchdog and a SIGINT/SIGTERM
    // broadcast reach this job's kernel (request_stop()).
    const auto g = ctx->guard(sim);
    sim.run();
  } else {
    sim.run();
  }
  sim.set_observer(nullptr);

  const auto& fs = fabric.stats();
  const double availability = static_cast<double>(ok_steps) / kFaultSteps;
  out.row = {spec.label,
             Table::integer(ok_steps),
             Table::integer(static_cast<long long>(fs.fetch_errors)),
             Table::integer(static_cast<long long>(fs.fetch_retries)),
             Table::integer(static_cast<long long>(fs.fallback_forwards)),
             Table::integer(
                 static_cast<long long>(fabric.fault_ledger().injected_count())),
             Table::integer(static_cast<long long>(fs.cache_hits)),
             Table::num(availability, 3)};
  if (ctx != nullptr) {
    ctx->record(sim);
    ctx->record_digest(digest.value());
    ctx->record_faults(fs.fetch_errors, fabric.fault_ledger());
    ctx->record_prefetch(fs.prefetch_hits, fs.cache_hits,
                         fs.config_words_fetched, fs.hidden_latency);
    // Memory footprint of this job's model: resident pages across its three
    // stores, how many of those alias interned golden pages, and the
    // process-wide high-water (per-child in process mode, shared across
    // concurrent jobs in thread mode).
    const mem::PagedStore* stores[] = {&cfg_mem.backing(), &ctx_mem0.backing(),
                                       &ctx_mem1.backing()};
    u64 pages = 0;
    u64 shared = 0;
    u64 splits = 0;
    for (const auto* st : stores) {
      pages += st->resident_pages();
      shared += st->shared_pages();
      splits += st->stats().cow_splits;
    }
    ctx->record_memory(mem::MemoryBudget::instance().high_water_bytes(),
                       pages, splits, shared);
    // The table row rides JobStats::user_data through the worker pipe, the
    // journal, the result cache and the service's RESULT frames, so jobs
    // that ran in another address space still print.
    ctx->record_user_data(join(out.row, "\t"));
  }
  out.ok = true;
  return out;
}

// -- DSE design point --------------------------------------------------------

namespace {

constexpr int kDseFrames = 4;

void run_accelerator(soc::Cpu& c, bus::addr_t base, bus::addr_t src,
                     bus::addr_t dst, u32 len) {
  c.write(base + soc::HwAccel::kSrc, static_cast<bus::word>(src));
  c.write(base + soc::HwAccel::kDst, static_cast<bus::word>(dst));
  c.write(base + soc::HwAccel::kLen, static_cast<bus::word>(len));
  c.write(base + soc::HwAccel::kCtrl, 1);
  c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone, 100_ns);
  c.write(base + soc::HwAccel::kStatus, 0);
}

netlist::Design make_dse_app(bool dedicated_cfg_link) {
  netlist::Design d;
  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  d.add("system_bus", bus_decl);

  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 0x8000;
  ram.bus = "system_bus";
  d.add("ram", ram);

  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 18;
  if (!dedicated_cfg_link) cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);
  if (dedicated_cfg_link) {
    netlist::DirectLinkDecl link;
    link.word_time = 10_ns;
    link.slave = "cfg_mem";
    d.add("cfg_link", link);
  }

  const std::pair<const char*, accel::KernelSpec> kernels[] = {
      {"fir", accel::make_fir_spec(accel::fir_lowpass_taps(24))},
      {"fft", accel::make_fft_spec(64)},
      {"aes", accel::make_aes_spec(accel::AesKey{1, 2, 3})},
  };
  bus::addr_t base = 0x100;
  for (const auto& [name, spec] : kernels) {
    netlist::HwAccelDecl acc;
    acc.base = base;
    acc.spec = spec;
    acc.slave_bus = acc.master_bus = "system_bus";
    d.add(name, acc);
    base += 0x100;
  }

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    Xoshiro256 rng(11);
    for (int f = 0; f < kDseFrames; ++f) {
      std::vector<bus::word> data(64);
      for (auto& v : data) v = static_cast<bus::word>(rng.next_range(0, 4095));
      c.burst_write(0x1000, data);
      run_accelerator(c, 0x100, 0x1000, 0x2000, 64);  // fir
      run_accelerator(c, 0x200, 0x2000, 0x3000, 64);  // fft
      run_accelerator(c, 0x300, 0x3000, 0x4000, 64);  // aes
      c.compute(300);
    }
  };
  d.add("cpu", cpu);
  return d;
}

drcf::ReconfigTechnology dse_technology(u32 index) {
  switch (index) {
    case 0: return drcf::virtex2pro_like();
    case 1: return drcf::varicore_like();
    default: return drcf::morphosys_like();
  }
}

std::vector<u64> dse_kernel_gates() {
  return {accel::make_fir_spec(accel::fir_lowpass_taps(24)).gate_count,
          accel::make_fft_spec(64).gate_count,
          accel::make_aes_spec(accel::AesKey{1, 2, 3}).gate_count};
}

void apply_timing(kern::Simulation& sim, bool loose, u32 quantum_ns) {
  sim.set_timing_mode(loose ? kern::TimingMode::kLoose
                            : kern::TimingMode::kTimed);
  if (quantum_ns != 0) sim.set_quantum(kern::Time::ns(quantum_ns));
}

}  // namespace

const char* dse_tech_name(u32 tech_index) {
  // Must match ReconfigTechnology::name (technology.cpp): labels built from
  // these feed dse_spec_hash, and a mismatch would orphan every journal and
  // cache entry written by earlier dse_explorer builds.
  switch (tech_index) {
    case 0: return "virtex2pro";
    case 1: return "varicore";
    default: return "morphosys";
  }
}

u64 dse_spec_hash(const std::string& label, bool loose, u32 quantum_ns) {
  u64 p = loose ? 1 : 0;
  p = p * 1099511628211ULL + quantum_ns;
  return campaign::spec_hash(label, p);
}

ParamMap dse_point_params(const DsePointSpec& spec) {
  ParamMap p;
  p["tech"] = std::to_string(spec.tech);
  p["slots"] = std::to_string(spec.slots);
  p["link"] = spec.dedicated_link ? "1" : "0";
  p["prefetch"] = spec.prefetch ? "1" : "0";
  p["loose"] = spec.loose ? "1" : "0";
  p["quantum_ns"] = std::to_string(spec.quantum_ns);
  return p;
}

std::optional<DsePointSpec> dse_point_from_params(const std::string& label,
                                                  const ParamMap& params) {
  DsePointSpec spec;
  spec.label = label;
  if (!param_u32(params, "tech", spec.tech) || spec.tech > 2 ||
      !param_u32(params, "slots", spec.slots) || spec.slots == 0 ||
      spec.slots > 8 || !param_bool(params, "link", spec.dedicated_link) ||
      !param_bool(params, "prefetch", spec.prefetch) ||
      !param_bool(params, "loose", spec.loose) ||
      !param_u32(params, "quantum_ns", spec.quantum_ns))
    return std::nullopt;
  return spec;
}

std::string pack_dse_outcome(const DseOutcome& out) {
  std::string s = join(out.row, "\t");
  s += '\x1e';
  s += out.point.label;
  for (const double v : out.point.objectives)
    s += '\x1f' + strfmt("%.17g", v);
  return s;
}

DseOutcome unpack_dse_outcome(const campaign::JobStats& stats) {
  DseOutcome out;
  if (!stats.done || stats.failed || stats.user_data.empty()) return out;
  const auto sep = stats.user_data.find('\x1e');
  if (sep == std::string::npos) return out;
  out.row = split(stats.user_data.substr(0, sep), '\t');
  const auto point = split(stats.user_data.substr(sep + 1), '\x1f');
  if (!point.empty()) out.point.label = point[0];
  for (usize i = 1; i < point.size(); ++i)
    out.point.objectives.push_back(std::strtod(point[i].c_str(), nullptr));
  out.ok = true;
  return out;
}

DseOutcome run_dse_point(const DsePointSpec& spec, campaign::JobContext* ctx) {
  DseOutcome out;
  auto d = make_dse_app(spec.dedicated_link);
  transform::TransformOptions opt;
  opt.drcf_config.technology = dse_technology(spec.tech);
  opt.drcf_config.slots = spec.slots;
  if (spec.prefetch) {
    opt.drcf_config.prefetch.policy = drcf::PrefetchPolicy::kHybrid;
    opt.drcf_config.prefetch.cache_slots = 2;
    for (u32 i = 0; i < 3; ++i)  // fir->fft->aes ring
      opt.drcf_config.prefetch.static_next.push_back((i + 1) % 3);
  }
  opt.config_memory = "cfg_mem";
  if (spec.dedicated_link) opt.config_bus = "cfg_link";
  const std::vector<std::string> candidates{"fir", "fft", "aes"};
  const auto report = transform::transform_to_drcf(d, candidates, opt);
  if (!report.ok) {
    out.error = "transform failed";
    return out;
  }
  kern::Simulation sim;
  apply_timing(sim, spec.loose, spec.quantum_ns);
  netlist::Elaborated e(sim, d);
  if (ctx != nullptr) {
    // The guard lets a SIGINT/SIGTERM broadcast (or wall-clock watchdog)
    // reach this job's kernel via request_stop().
    const auto g = ctx->guard(sim);
    sim.run();
  } else {
    sim.run();
  }
  if (ctx != nullptr) {
    ctx->record(sim);
    ctx->record_timing(sim);
  }
  if (ctx != nullptr && ctx->interrupted()) {
    out.error = "interrupted";
    return out;
  }
  if (!e.get_processor("cpu").finished()) {
    out.error = "did not finish";
    return out;
  }
  const auto& fabric = e.get_drcf("drcf1");
  const auto& fs = fabric.stats();
  if (ctx != nullptr) ctx->record_faults(fs.fetch_errors, fabric.fault_ledger());
  if (ctx != nullptr)
    ctx->record_prefetch(fs.prefetch_hits, fs.cache_hits,
                         fs.config_words_fetched, fs.hidden_latency);
  const auto area = estimate::drcf_area(dse_kernel_gates(),
                                        dse_technology(spec.tech), spec.slots);
  const double time_us = sim.now().to_us();
  const double energy_uj = fs.reconfig_energy_j * 1e6;
  const double hidden_us = fs.hidden_latency.to_us();
  const double busy_us = fs.reconfig_busy_time.to_us();
  const double hide_pct =
      hidden_us + busy_us > 0 ? 100.0 * hidden_us / (hidden_us + busy_us) : 0.0;
  out.row = {spec.label, Table::num(time_us, 1),
             Table::integer(static_cast<long long>(fs.switches)),
             Table::integer(static_cast<long long>(fs.config_words_fetched)),
             Table::num(hidden_us, 2), Table::num(hide_pct, 1),
             Table::integer(
                 static_cast<long long>(area.total_gate_equivalents())),
             Table::num(energy_uj, 2)};
  // Fourth objective: inflexibility (0 = field-upgradable fabric, 1 =
  // frozen silicon) — the axis that motivates reconfigurable hardware in
  // the first place (paper Fig. 2). Fifth: fetched configuration bytes,
  // the config-memory bandwidth bill a prefetching scheduler can lower
  // (cache hits) or raise (mispredicted fills).
  out.point = {spec.label,
               {time_us, static_cast<double>(area.total_gate_equivalents()),
                energy_uj, 0.0,
                static_cast<double>(fs.config_words_fetched) *
                    sizeof(bus::word)}};
  out.ok = true;
  if (ctx != nullptr) ctx->record_user_data(pack_dse_outcome(out));
  return out;
}

DseOutcome run_dse_hardwired(bool loose, u32 quantum_ns,
                             campaign::JobContext* ctx) {
  DseOutcome out;
  auto d = make_dse_app(false);
  kern::Simulation sim;
  apply_timing(sim, loose, quantum_ns);
  netlist::Elaborated e(sim, d);
  if (ctx != nullptr) {
    const auto g = ctx->guard(sim);
    sim.run();
  } else {
    sim.run();
  }
  if (ctx != nullptr) {
    ctx->record(sim);
    ctx->record_timing(sim);
  }
  if (ctx != nullptr && ctx->interrupted()) {
    out.error = "interrupted";
    return out;
  }
  const u64 hw_gates = estimate::hardwired_gates(dse_kernel_gates());
  out.row = {Table::num(sim.now().to_us(), 1)};
  out.point = {"hardwired",
               {sim.now().to_us(), static_cast<double>(hw_gates), 0.0, 1.0,
                0.0}};
  out.ok = true;
  if (ctx != nullptr) ctx->record_user_data(pack_dse_outcome(out));
  return out;
}

DseOutcome run_dse_migration_probe(bool loose, u32 quantum_ns,
                                   campaign::JobContext* ctx) {
  DseOutcome out;
  conformance::MigrationSpec spec;
  conformance::ScenarioOptions sopt;
  sopt.timing_mode = loose ? kern::TimingMode::kLoose : kern::TimingMode::kTimed;
  if (quantum_ns != 0) sopt.quantum = kern::Time::ns(quantum_ns);
  const auto r = conformance::run_migration(spec, sopt);
  if (ctx != nullptr) {
    ctx->record_digest(r.scenario.digest);
    ctx->record_migration(r.controller.migrations,
                          r.controller.state_words_moved,
                          r.controller.transfer_faults_recovered);
  }
  if (ctx != nullptr && ctx->interrupted()) {
    out.error = "interrupted";
    return out;
  }
  if (!r.cpu_finished || !r.migration.ok()) {
    out.error = "migration probe failed: " +
                std::string(soc::to_string(r.migration.status));
    return out;
  }
  out.row = {std::to_string(r.controller.migrations),
             std::to_string(r.controller.state_words_moved),
             std::to_string(r.controller.transfer_faults_recovered)};
  out.ok = true;
  if (ctx != nullptr) ctx->record_user_data(pack_dse_outcome(out));
  return out;
}

// -- Golden determinism job --------------------------------------------------

u64 golden_spec_hash(u64 seed) { return campaign::spec_hash("golden", seed); }

void run_golden(u64 seed, u32 throttle_ms, campaign::JobContext& ctx) {
  using kern::Time;
  if (throttle_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(throttle_ms));
  Xoshiro256 rng(seed);
  kern::Simulation sim;
  kern::Module top(sim, "top");
  kern::Signal<u32> sig(top, "sig");
  u64 fold = 1469598103934665603ull;
  kern::SpawnOptions opts;
  opts.sensitivity = {&sig.value_changed_event()};
  opts.dont_initialize = true;
  top.spawn_method("obs", [&] {
    fold ^= sim.now().picoseconds() ^ (u64{sig.read()} << 32);
    fold *= 1099511628211ull;
  }, opts);
  top.spawn_thread("producer", [&] {
    for (int i = 0; i < 40; ++i) {
      kern::wait(Time::ns(1 + rng.next_below(9)));
      sig.write(static_cast<u32>(rng.next_below(1u << 30)));
    }
  });
  {
    const auto g = ctx.guard(sim);
    sim.run();
  }
  ctx.record(sim);
  ctx.record_digest(fold);
  ctx.record_user_data("fold\t" + std::to_string(fold));
}

// -- Kind registry -----------------------------------------------------------

namespace {

/// dse_hardwired / dse_migration_probe take only the timing axis.
bool dse_timing_from_params(const ParamMap& params, bool& loose,
                            u32& quantum_ns) {
  return param_bool(params, "loose", loose) &&
         param_u32(params, "quantum_ns", quantum_ns);
}

/// A failed dse body surfaces as a failed job (JobStats::error) rather than
/// a silently-empty result; an interrupted one returns quietly so the
/// runner's signal-stop quarantine stays in charge of the verdict.
void finish_dse(const DseOutcome& out) {
  if (!out.ok && out.error != "interrupted")
    throw std::runtime_error(out.error.empty() ? "dse job failed" : out.error);
}

}  // namespace

std::vector<std::pair<std::string, JobBuilder>> builtin_kinds() {
  std::vector<std::pair<std::string, JobBuilder>> kinds;
  kinds.emplace_back(
      "fault_point",
      [](const std::string& label, const ParamMap& params)
          -> std::optional<JobBody> {
        const auto spec = fault_point_from_params(label, params);
        if (!spec.has_value()) return std::nullopt;
        return JobBody{[spec = *spec](campaign::JobContext& ctx) {
          (void)run_fault_point(spec, &ctx);
        }};
      });
  kinds.emplace_back(
      "dse_point",
      [](const std::string& label, const ParamMap& params)
          -> std::optional<JobBody> {
        const auto spec = dse_point_from_params(label, params);
        if (!spec.has_value()) return std::nullopt;
        return JobBody{[spec = *spec](campaign::JobContext& ctx) {
          finish_dse(run_dse_point(spec, &ctx));
        }};
      });
  kinds.emplace_back(
      "dse_hardwired",
      [](const std::string&, const ParamMap& params)
          -> std::optional<JobBody> {
        bool loose = false;
        u32 quantum_ns = 0;
        if (!dse_timing_from_params(params, loose, quantum_ns))
          return std::nullopt;
        return JobBody{[loose, quantum_ns](campaign::JobContext& ctx) {
          finish_dse(run_dse_hardwired(loose, quantum_ns, &ctx));
        }};
      });
  kinds.emplace_back(
      "dse_migration_probe",
      [](const std::string&, const ParamMap& params)
          -> std::optional<JobBody> {
        bool loose = false;
        u32 quantum_ns = 0;
        if (!dse_timing_from_params(params, loose, quantum_ns))
          return std::nullopt;
        return JobBody{[loose, quantum_ns](campaign::JobContext& ctx) {
          finish_dse(run_dse_migration_probe(loose, quantum_ns, &ctx));
        }};
      });
  kinds.emplace_back(
      "golden",
      [](const std::string&, const ParamMap& params)
          -> std::optional<JobBody> {
        u64 seed = 0;
        u32 throttle_ms = 0;
        if (params.find("seed") == params.end() ||
            !param_u64(params, "seed", seed) ||
            !param_u32(params, "throttle_ms", throttle_ms))
          return std::nullopt;
        return JobBody{[seed, throttle_ms](campaign::JobContext& ctx) {
          run_golden(seed, throttle_ms, ctx);
        }};
      });
  return kinds;
}

}  // namespace adriatic::service
