// The DRCF model transformation (paper Fig. 4): given a design and a set of
// candidate instances, (1) analyse each candidate module's interface and
// ports, (2) analyse its instantiation and bindings, (3) create a DRCF
// component from the template, (4) modify the instantiating hierarchy to use
// the DRCF instead of the candidates. The pass also enforces the paper's
// Sec. 5.4 limitations and emits before/after pseudo-SystemC listings that
// mirror the paper's code examples.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "drcf/drcf.hpp"
#include "netlist/design.hpp"

namespace adriatic::transform {

struct TransformOptions {
  drcf::DrcfConfig drcf_config;
  std::string drcf_name = "drcf1";
  /// Memory component that will hold configuration bitstreams. Contexts are
  /// packed into it starting at `config_base` (or the memory's base when 0).
  std::string config_memory;
  bus::addr_t config_base = 0;
  /// Bus or link used for configuration fetches. Empty = the candidates'
  /// shared bus (the risky configuration Sec. 5.4 warns about when that bus
  /// is non-split).
  std::string config_bus;
  /// Override per-context extra reconfiguration delay.
  kern::Time extra_delay = kern::Time::zero();
};

/// Phase-1/2 record for one candidate — what the paper's tool extracts from
/// the SystemC source (interface methods, ports, constructor bindings).
struct CandidateAnalysis {
  std::string instance;
  std::string interface;             ///< Slave interface implemented.
  std::vector<std::string> ports;    ///< "name: type" entries.
  std::vector<std::string> bindings; ///< "port -> target" entries.
  bus::addr_t low = 0;
  bus::addr_t high = 0;
  u64 gates = 0;
  u64 context_words = 0;
  bus::addr_t config_address = 0;
};

struct TransformReport {
  bool ok = false;
  std::vector<CandidateAnalysis> candidates;
  std::vector<std::string> diagnostics;  ///< Errors and warnings.
  std::string before_listing;  ///< Paper-style pseudo-SystemC, original.
  std::string after_listing;   ///< Paper-style pseudo-SystemC, transformed.
  std::string drcf_name;

  [[nodiscard]] bool has_warning(const std::string& needle) const;
};

/// Applies the transformation in place. On failure the design is unchanged
/// and the report's diagnostics say why. Warnings (e.g. the shared blocking
/// configuration bus) do not fail the transformation.
TransformReport transform_to_drcf(netlist::Design& design,
                                  std::span<const std::string> candidates,
                                  const TransformOptions& options);

}  // namespace adriatic::transform
