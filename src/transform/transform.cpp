#include "transform/transform.hpp"

#include <algorithm>

#include "soc/hwacc.hpp"
#include "util/strings.hpp"

namespace adriatic::transform {

using netlist::Design;
using netlist::DrcfDecl;
using netlist::HwAccelDecl;
using netlist::MemoryDecl;

bool TransformReport::has_warning(const std::string& needle) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const std::string& d) {
                       return d.find(needle) != std::string::npos;
                     });
}

namespace {

std::string make_before_listing(
    const std::vector<CandidateAnalysis>& candidates,
    const std::string& bus_name) {
  std::string s = "SC_MODULE(top){\n  sc_in_clk clk;\n";
  for (const auto& c : candidates)
    s += strfmt("  hwacc *%s;\n", c.instance.c_str());
  s += strfmt("  bus *%s;\n\n  SC_CTOR(top) {\n", bus_name.c_str());
  s += strfmt("    %s = new bus(\"BUS\");\n    %s->clk(clk);\n",
              bus_name.c_str(), bus_name.c_str());
  for (const auto& c : candidates) {
    s += strfmt("    %s = new hwacc(\"%s\", 0x%X, 0x%X);\n",
                c.instance.c_str(), c.instance.c_str(), c.low, c.high);
    s += strfmt("    %s->clk(clk);\n    %s->mst_port(*%s);\n",
                c.instance.c_str(), c.instance.c_str(), bus_name.c_str());
    s += strfmt("    %s->slv_port(*%s);\n", bus_name.c_str(),
                c.instance.c_str());
  }
  s += "    ...\n";
  return s;
}

std::string make_after_listing(
    const std::vector<CandidateAnalysis>& candidates,
    const std::string& bus_name, const std::string& drcf_name) {
  std::string s = "SC_MODULE(top){\n  sc_in_clk clk;\n";
  s += strfmt("  drcf_own *%s;\n  bus *%s;\n\n  SC_CTOR(top) {\n",
              drcf_name.c_str(), bus_name.c_str());
  s += strfmt("    %s = new bus(\"BUS\");\n    %s->clk(clk);\n",
              bus_name.c_str(), bus_name.c_str());
  s += strfmt("    %s = new drcf_own(\"%s\");\n    %s->clk(clk);\n",
              drcf_name.c_str(), drcf_name.c_str(), drcf_name.c_str());
  s += strfmt("    %s->mst_port(*%s);\n    %s->slv_port(*%s);\n",
              drcf_name.c_str(), bus_name.c_str(), bus_name.c_str(),
              drcf_name.c_str());
  s += "    ...\n\n";
  s += strfmt("class drcf_own : public sc_module, public bus_slv_if {\n");
  s += "  SC_HAS_PROCESS(drcf_own);\n  void arb_and_instr();\n";
  for (const auto& c : candidates)
    s += strfmt("  hwacc *%s;  // context @0x%X, %llu config words\n",
                c.instance.c_str(), c.config_address,
                static_cast<unsigned long long>(c.context_words));
  s += strfmt("  SC_CTOR(drcf_own) {\n    SC_THREAD(arb_and_instr);\n");
  for (const auto& c : candidates) {
    s += strfmt("    %s = new hwacc(\"%s\", 0x%X, 0x%X);\n",
                c.instance.c_str(), c.instance.c_str(), c.low, c.high);
    s += strfmt("    %s->clk(clk);\n    %s->mst_port(mst_port);\n",
                c.instance.c_str(), c.instance.c_str());
  }
  s += "  }\n};\n";
  return s;
}

}  // namespace

TransformReport transform_to_drcf(Design& design,
                                  std::span<const std::string> candidates,
                                  const TransformOptions& options) {
  TransformReport report;
  report.drcf_name = options.drcf_name;

  if (candidates.empty()) {
    report.diagnostics.emplace_back("error: no candidate instances given");
    return report;
  }
  if (design.contains(options.drcf_name)) {
    report.diagnostics.push_back("error: component name '" +
                                 options.drcf_name + "' already in use");
    return report;
  }

  // --- Phase 1+2: analyse modules and instances -----------------------------
  std::string shared_bus;
  bool failed = false;
  std::vector<std::string> seen;
  for (const auto& name : candidates) {
    if (std::find(seen.begin(), seen.end(), name) != seen.end()) {
      report.diagnostics.push_back("error: candidate '" + name +
                                   "' listed twice");
      failed = true;
      continue;
    }
    seen.push_back(name);
    if (!design.contains(name)) {
      report.diagnostics.push_back("error: no component named '" + name +
                                   "'");
      failed = true;
      continue;
    }
    const auto* h = design.get_if<HwAccelDecl>(name);
    if (h == nullptr) {
      // Paper limitation 2: the candidate must implement a bus-slave
      // interface exposing get_low_add()/get_high_add().
      report.diagnostics.push_back(
          "error: candidate '" + name + "' (kind " +
          netlist::decl_kind(design.at(name)) +
          ") does not implement bus_slv_if with "
          "get_low_add()/get_high_add() (limitation 2)");
      failed = true;
      continue;
    }
    CandidateAnalysis a;
    a.instance = name;
    a.interface = "bus_slv_if";
    a.ports = {"clk: sc_in_clk", "mst_port: sc_port<bus_mst_if>"};
    a.bindings = {"clk -> clk", "mst_port -> " + h->master_bus,
                  "slv_port <- " + h->slave_bus};
    a.low = h->base;
    a.high = h->base + soc::HwAccel::kRegWindow - 1;
    a.gates = h->spec.gate_count;
    report.candidates.push_back(std::move(a));

    // Paper limitation 1: all candidates must live in the same hierarchy —
    // in netlist terms, be slaves of the same bus.
    if (shared_bus.empty()) {
      shared_bus = h->slave_bus;
    } else if (h->slave_bus != shared_bus) {
      report.diagnostics.push_back(
          "error: candidate '" + name + "' is bound to bus '" +
          h->slave_bus + "' but earlier candidates use '" + shared_bus +
          "' — all DRCF candidates must be instantiated in the same "
          "component (limitation 1)");
      failed = true;
    }
  }
  if (shared_bus.empty() && !failed) {
    report.diagnostics.emplace_back(
        "error: candidates are not bound to any bus");
    failed = true;
  }
  if (candidates.size() == 1 && !failed) {
    // Legal but degenerate: one context time-shares with nothing, so the
    // transformation only adds reconfiguration latency. Say so rather than
    // transforming silently.
    report.diagnostics.push_back(
        "warning: single candidate '" + candidates[0] +
        "' — the DRCF time-shares nothing; the transformation adds "
        "reconfiguration overhead without any area benefit");
  }

  // The DRCF exposes the union of the candidates' address ranges; any
  // non-candidate slave inside that union would overlap the DRCF on the
  // bus. Catch it here with a useful message instead of failing at
  // elaboration.
  if (!report.candidates.empty()) {
    bus::addr_t lo = report.candidates.front().low;
    bus::addr_t hi = report.candidates.front().high;
    for (const auto& c : report.candidates) {
      lo = std::min(lo, c.low);
      hi = std::max(hi, c.high);
    }
    for (const auto& other : design.names()) {
      if (std::find(seen.begin(), seen.end(), other) != seen.end()) continue;
      bus::addr_t olo = 0, ohi = 0;
      bool is_slave = false;
      if (const auto* h = design.get_if<HwAccelDecl>(other)) {
        if (h->slave_bus != shared_bus) continue;
        olo = h->base;
        ohi = h->base + soc::HwAccel::kRegWindow - 1;
        is_slave = true;
      } else if (const auto* m = design.get_if<MemoryDecl>(other)) {
        if (m->bus != shared_bus) continue;
        olo = m->low;
        ohi = m->low + static_cast<bus::addr_t>(m->words) - 1;
        is_slave = true;
      }
      if (is_slave && olo <= hi && lo <= ohi) {
        report.diagnostics.push_back(
            "error: slave '" + other + "' occupies [" +
            std::to_string(olo) + ", " + std::to_string(ohi) +
            "] inside the DRCF's union address range [" +
            std::to_string(lo) + ", " + std::to_string(hi) +
            "] — candidate register windows must be contiguous with "
            "respect to other slaves on the bus");
        failed = true;
      }
    }
  }

  // Configuration memory checks.
  const auto* cfg_mem =
      options.config_memory.empty()
          ? nullptr
          : design.get_if<MemoryDecl>(options.config_memory);
  if (cfg_mem == nullptr) {
    report.diagnostics.push_back("error: config memory '" +
                                 options.config_memory + "' not found");
    failed = true;
  }
  if (failed) return report;

  // --- Phase 3: create the DRCF component from the template -----------------
  DrcfDecl drcf_decl;
  drcf_decl.config = options.drcf_config;
  drcf_decl.slave_bus = shared_bus;
  drcf_decl.config_bus =
      options.config_bus.empty() ? shared_bus : options.config_bus;

  bus::addr_t next_cfg =
      options.config_base != 0 ? options.config_base : cfg_mem->low;
  const bus::addr_t cfg_mem_end =
      cfg_mem->low + static_cast<bus::addr_t>(cfg_mem->words) - 1;

  for (auto& a : report.candidates) {
    drcf::ContextParams params;
    params.gates = a.gates;
    params.size_words = options.drcf_config.technology.context_words(a.gates);
    params.config_address = next_cfg;
    params.extra_delay = options.extra_delay;
    if (params.size_words == 0) params.size_words = 1;
    if (next_cfg < cfg_mem->low ||
        next_cfg + params.size_words - 1 > cfg_mem_end) {
      report.diagnostics.push_back(
          "error: configuration memory '" + options.config_memory +
          "' too small for context '" + a.instance + "' (" +
          std::to_string(params.size_words) + " words at " +
          std::to_string(next_cfg) + ")");
      return report;
    }
    a.context_words = params.size_words;
    a.config_address = params.config_address;
    next_cfg += static_cast<bus::addr_t>(params.size_words);
    drcf_decl.contexts.push_back(a.instance);
    drcf_decl.context_params.push_back(params);
  }

  // Paper limitation 3: blocking interface methods on a shared config bus.
  if (const auto* b = design.get_if<netlist::BusDecl>(drcf_decl.config_bus)) {
    if (drcf_decl.config_bus == shared_bus && !b->config.split_transactions)
      report.diagnostics.push_back(
          "warning: configuration fetches share non-split bus '" +
          shared_bus +
          "' with the DRCF's slave interface — context switches will "
          "deadlock the bus (limitation 3); use split transactions or a "
          "dedicated configuration port");
  }

  // A static-next prefetch annotation naming a context the DRCF will not
  // have is treated as "no annotation" at run time (the predictor ignores
  // it). Warn here, where the context count is known, so a misconfigured
  // sweep surfaces instead of quietly never prefetching.
  const auto& pf = options.drcf_config.prefetch;
  for (usize i = 0; i < pf.static_next.size(); ++i) {
    if (i < drcf_decl.contexts.size() &&
        pf.static_next[i] >= drcf_decl.contexts.size())
      report.diagnostics.push_back(
          "warning: prefetch.static_next[" + std::to_string(i) + "] = " +
          std::to_string(pf.static_next[i]) + " is out of range for " +
          std::to_string(drcf_decl.contexts.size()) +
          " DRCF contexts — the annotation will never fire");
  }

  report.before_listing = make_before_listing(report.candidates, shared_bus);
  report.after_listing = make_after_listing(report.candidates, shared_bus,
                                            options.drcf_name);

  // --- Phase 4: modify the instantiating hierarchy --------------------------
  // The candidates stay in the design (the DRCF instantiates them inside
  // itself, per the paper's template) but lose their direct bus binding.
  for (const auto& name : candidates) {
    auto* h = design.get_if<HwAccelDecl>(name);
    h->slave_bus.clear();
  }
  design.add(options.drcf_name, std::move(drcf_decl));

  report.ok = true;
  return report;
}

}  // namespace adriatic::transform
