// Bus traffic generator: issues periodic read or write bursts against an
// address window. Used as background load in the memory-organisation
// experiments, and as a bus-master-only component (no slave interface) that
// exercises the transformation's limitation-2 diagnostic.
#pragma once

#include <string>

#include "bus/interfaces.hpp"
#include "kernel/module.hpp"
#include "kernel/port.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace adriatic::soc {

struct TrafficGenConfig {
  bus::addr_t base = 0;
  u32 window_words = 64;       ///< Addresses are drawn from [base, base+window).
  u32 burst_words = 8;
  kern::Time period = kern::Time::us(1);  ///< Gap between bursts.
  double write_fraction = 0.5;
  u32 priority = 0;
  u64 seed = 1;
  u64 max_bursts = 0;          ///< 0 = unlimited.
};

struct TrafficGenStats {
  u64 bursts = 0;
  u64 words = 0;
  kern::Time total_latency;  ///< Sum of per-burst completion latencies.
};

class TrafficGen : public kern::Module {
 public:
  TrafficGen(kern::Object& parent, std::string name, TrafficGenConfig cfg);

  kern::Port<bus::BusMasterIf> mst_port;

  [[nodiscard]] const TrafficGenStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double mean_burst_latency_ns() const {
    return stats_.bursts == 0 ? 0.0
                              : stats_.total_latency.to_ns() /
                                    static_cast<double>(stats_.bursts);
  }

 private:
  void run();

  TrafficGenConfig cfg_;
  TrafficGenStats stats_;
  Xoshiro256 rng_;
};

}  // namespace adriatic::soc
