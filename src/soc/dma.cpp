#include "soc/dma.hpp"

#include <vector>

#include "kernel/simulation.hpp"

namespace adriatic::soc {

Dma::Dma(kern::Object& parent, std::string name, bus::addr_t base,
         usize chunk_words)
    : Module(parent, std::move(name)),
      mst_port(*this, "mst_port"),
      base_(base),
      chunk_words_(chunk_words == 0 ? 1 : chunk_words),
      start_event_(sim(), this->name() + ".start"),
      done_event_(sim(), this->name() + ".done") {
  spawn_thread("worker", [this] { worker(); }).set_daemon();
}

bool Dma::read(bus::addr_t add, bus::word* data) {
  if (add < base_ || add > get_high_add() || data == nullptr) return false;
  switch (add - base_) {
    case kCtrl:
      *data = 0;
      return true;
    case kStatus:
      *data = status_;
      return true;
    case kSrc:
      *data = src_;
      return true;
    case kDst:
      *data = dst_;
      return true;
    case kLen:
      *data = len_;
      return true;
    default:
      *data = 0;
      return true;
  }
}

bool Dma::write(bus::addr_t add, bus::word* data) {
  if (add < base_ || add > get_high_add() || data == nullptr) return false;
  switch (add - base_) {
    case kCtrl:
      if (*data == 1) {
        if (status_ == kBusy) return false;
        status_ = kBusy;
        start_event_.notify_delta();
      }
      return true;
    case kStatus:
      if (*data == 0 && status_ == kDone) status_ = kIdle;
      return true;
    case kSrc:
      src_ = *data;
      return true;
    case kDst:
      dst_ = *data;
      return true;
    case kLen:
      len_ = *data;
      return true;
    default:
      return false;
  }
}

void Dma::worker() {
  std::vector<bus::word> buffer;
  for (;;) {
    kern::wait(start_event_);
    usize remaining = static_cast<usize>(len_);
    bus::addr_t s = static_cast<bus::addr_t>(src_);
    bus::addr_t d = static_cast<bus::addr_t>(dst_);
    while (remaining > 0) {
      const usize chunk = std::min(chunk_words_, remaining);
      buffer.assign(chunk, 0);
      mst_port->burst_read(s, buffer, 0);
      mst_port->burst_write(d, buffer, 0);
      stats_.words_moved += chunk;
      s += static_cast<bus::addr_t>(chunk);
      d += static_cast<bus::addr_t>(chunk);
      remaining -= chunk;
    }
    ++stats_.transfers;
    status_ = kDone;
    done_event_.notify_delta();
  }
}

}  // namespace adriatic::soc
