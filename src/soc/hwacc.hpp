// Bus-attached hardware accelerator — the `hwacc` of the paper's Sec. 5.2
// listing: implements bus_slv_if, has a clk input and a bus master port, and
// runs a workload kernel over data it fetches itself (DMA style).
//
// Register map (word offsets from the base address):
//   +0 CTRL    write 1 = start
//   +1 STATUS  0 = idle, 1 = busy, 2 = done (write 0 to clear)
//   +2 SRC     source address of the input buffer
//   +3 DST     destination address for results
//   +4 LEN     number of input words
//   +5 OUTLEN  (read-only) number of output words produced by the last run
#pragma once

#include <string>

#include "accel/kernel_spec.hpp"
#include "bus/interfaces.hpp"
#include "kernel/module.hpp"
#include "kernel/port.hpp"
#include "kernel/signal.hpp"
#include "util/stats.hpp"

namespace adriatic::soc {

struct HwAccelStats {
  u64 invocations = 0;
  u64 words_in = 0;
  u64 words_out = 0;
  u64 reg_accesses = 0;
  kern::Time compute_time;  ///< Time spent in the datapath (excl. transfers).
};

class HwAccel : public kern::Module, public bus::BusSlaveIf {
 public:
  static constexpr u32 kRegWindow = 8;  ///< Address range size in words.
  enum Reg : u32 {
    kCtrl = 0,
    kStatus = 1,
    kSrc = 2,
    kDst = 3,
    kLen = 4,
    kOutLen = 5
  };
  enum Status : bus::word { kIdle = 0, kBusy = 1, kDone = 2 };

  HwAccel(kern::Object& parent, std::string name, bus::addr_t base,
          accel::KernelSpec spec,
          kern::Time cycle_time = kern::Time::ns(10));

  kern::In<bool> clk;  ///< Present to mirror the paper's module shape.
  kern::Port<bus::BusMasterIf> mst_port;

  // BusSlaveIf ---------------------------------------------------------------
  [[nodiscard]] bus::addr_t get_low_add() const override { return base_; }
  [[nodiscard]] bus::addr_t get_high_add() const override {
    return base_ + kRegWindow - 1;
  }
  bool read(bus::addr_t add, bus::word* data) override;
  bool write(bus::addr_t add, bus::word* data) override;

  /// Notified (delta) when a run begins (profiling hooks).
  [[nodiscard]] kern::Event& started_event() noexcept {
    return started_event_;
  }
  /// Notified (delta) when a run completes.
  [[nodiscard]] kern::Event& done_event() noexcept { return done_event_; }
  /// True while a run is in flight.
  [[nodiscard]] bool busy() const noexcept { return status_ == kBusy; }
  [[nodiscard]] const HwAccelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const accel::KernelSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] kern::Time cycle_time() const noexcept { return cycle_time_; }

 private:
  void worker();

  bus::addr_t base_;
  accel::KernelSpec spec_;
  kern::Time cycle_time_;

  bus::word status_ = kIdle;
  bus::word src_ = 0;
  bus::word dst_ = 0;
  bus::word len_ = 0;
  bus::word out_len_ = 0;

  kern::Event start_event_;
  kern::Event started_event_;
  kern::Event done_event_;
  HwAccelStats stats_;
};

}  // namespace adriatic::soc
