#include "soc/iss.hpp"

#include <stdexcept>

#include "kernel/simulation.hpp"
#include "util/log.hpp"

namespace adriatic::soc {

using morphosys::Instruction;
using morphosys::Opcode;

std::vector<bus::word> encode_program(const morphosys::Program& program) {
  std::vector<bus::word> image;
  image.reserve(program.size() * 2);
  for (const auto& ins : program) {
    const u32 w0 = (static_cast<u32>(ins.op) & 0x3F) |
                   (static_cast<u32>(ins.rd) & 0xF) << 6 |
                   (static_cast<u32>(ins.rs) & 0xF) << 10 |
                   (static_cast<u32>(ins.rt) & 0xF) << 14;
    image.push_back(static_cast<bus::word>(w0));
    // Branches carry the target index; everything else carries imm.
    const bool is_branch = ins.op == Opcode::kBeq || ins.op == Opcode::kBne ||
                           ins.op == Opcode::kJmp;
    image.push_back(is_branch ? static_cast<bus::word>(ins.target)
                              : static_cast<bus::word>(ins.imm));
  }
  return image;
}

IssProcessor::IssProcessor(kern::Object& parent, std::string name,
                           IssConfig cfg)
    : Module(parent, std::move(name)),
      mst_port(*this, "mst_port"),
      cfg_(cfg),
      halted_event_(sim(), this->name() + ".halted") {
  if (cfg_.icache_line_words != 0 && !is_pow2(cfg_.icache_line_words))
    throw std::invalid_argument(this->name() +
                                ": icache line must be a power of two");
  spawn_thread("core", [this] { run(); });
}

bus::word IssProcessor::bus_read(bus::addr_t add) {
  bus::word v = 0;
  if (mst_port->read(add, &v, cfg_.bus_priority) != bus::BusStatus::kOk)
    throw std::runtime_error(name() + ": data read fault at " +
                             std::to_string(add));
  ++stats_.data_reads;
  return v;
}

void IssProcessor::bus_write(bus::addr_t add, bus::word value) {
  if (mst_port->write(add, &value, cfg_.bus_priority) != bus::BusStatus::kOk)
    throw std::runtime_error(name() + ": data write fault at " +
                             std::to_string(add));
  ++stats_.data_writes;
}

bool IssProcessor::fetch(u32 pc, bus::word* w0, bus::word* w1) {
  const bus::addr_t addr = cfg_.reset_pc + pc * 2;
  if (cfg_.icache_line_words >= 2) {
    auto cached = [&](bus::addr_t a, bus::word* out) {
      if (line_valid_ && a >= line_base_ &&
          a < line_base_ + cfg_.icache_line_words) {
        *out = line_[a - line_base_];
        ++stats_.icache_hits;
        return true;
      }
      return false;
    };
    for (const auto [a, out] : {std::pair{addr, w0}, std::pair{addr + 1, w1}}) {
      if (cached(a, out)) continue;
      // Refill the line containing `a`.
      line_base_ = a & ~static_cast<bus::addr_t>(cfg_.icache_line_words - 1);
      line_.assign(cfg_.icache_line_words, 0);
      if (mst_port->burst_read(line_base_, line_, cfg_.bus_priority) !=
          bus::BusStatus::kOk)
        return false;
      line_valid_ = true;
      stats_.ifetch_reads += cfg_.icache_line_words;
      *out = line_[a - line_base_];
    }
    return true;
  }
  if (mst_port->read(addr, w0, cfg_.bus_priority) != bus::BusStatus::kOk)
    return false;
  if (mst_port->read(addr + 1, w1, cfg_.bus_priority) != bus::BusStatus::kOk)
    return false;
  stats_.ifetch_reads += 2;
  return true;
}

void IssProcessor::run() {
  u32 pc = 0;
  auto halt = [&](bool illegal) {
    stats_.halted = true;
    stats_.illegal_instruction = illegal;
    halted_event_.notify_delta();
  };

  for (;;) {
    bus::word w0 = 0, w1 = 0;
    if (!fetch(pc, &w0, &w1)) {
      log::error() << name() << ": instruction fetch fault at pc " << pc;
      halt(true);
      return;
    }
    const auto op = static_cast<Opcode>(static_cast<u32>(w0) & 0x3F);
    const u8 rd = static_cast<u8>((static_cast<u32>(w0) >> 6) & 0xF);
    const u8 rs = static_cast<u8>((static_cast<u32>(w0) >> 10) & 0xF);
    const u8 rt = static_cast<u8>((static_cast<u32>(w0) >> 14) & 0xF);
    const i32 imm = static_cast<i32>(w1);
    ++pc;
    ++stats_.instructions;
    kern::wait(cfg_.cycle_time);  // one cycle per instruction, plus bus time

    switch (op) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        halt(false);
        return;
      case Opcode::kAddi:
        regs_.at(rd) = regs_.at(rs) + imm;
        break;
      case Opcode::kAdd:
        regs_.at(rd) = regs_.at(rs) + regs_.at(rt);
        break;
      case Opcode::kSub:
        regs_.at(rd) = regs_.at(rs) - regs_.at(rt);
        break;
      case Opcode::kMul:
        regs_.at(rd) = regs_.at(rs) * regs_.at(rt);
        break;
      case Opcode::kLdw:
        regs_.at(rd) = bus_read(
            static_cast<bus::addr_t>(regs_.at(rs) + imm));
        break;
      case Opcode::kStw:
        bus_write(static_cast<bus::addr_t>(regs_.at(rs) + imm), regs_.at(rt));
        break;
      case Opcode::kBeq:
        if (regs_.at(rs) == regs_.at(rt)) pc = static_cast<u32>(w1);
        break;
      case Opcode::kBne:
        if (regs_.at(rs) != regs_.at(rt)) pc = static_cast<u32>(w1);
        break;
      case Opcode::kJmp:
        pc = static_cast<u32>(w1);
        break;
      default:
        // RA/DMA opcodes are MorphoSys-only; this core treats them as
        // illegal (and so would any fetch of non-code memory).
        log::error() << name() << ": illegal opcode "
                     << static_cast<int>(op) << " at pc " << pc - 1;
        halt(true);
        return;
    }
  }
}

}  // namespace adriatic::soc
