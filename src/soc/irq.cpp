#include "soc/irq.hpp"

#include <stdexcept>

#include "kernel/simulation.hpp"

namespace adriatic::soc {

InterruptController::InterruptController(kern::Object& parent,
                                         std::string name, bus::addr_t base)
    : Module(parent, std::move(name)),
      base_(base),
      irq_event_(sim(), this->name() + ".irq") {}

void InterruptController::connect(u32 index, kern::Event& source) {
  if (index >= 32)
    throw std::out_of_range(name() + ": IRQ index must be 0-31");
  auto watcher = std::make_unique<kern::MethodProcess>(
      *this, "irq" + std::to_string(index) + "_watch", [this, index] {
        pending_ |= (1u << index);
        ++latched_;
        if (enable_ & (1u << index)) irq_event_.notify_delta();
      });
  watcher->sensitive(source);
  watcher->dont_initialize();
  watchers_.push_back(std::move(watcher));
}

bool InterruptController::read(bus::addr_t add, bus::word* data) {
  if (add < base_ || add > get_high_add() || data == nullptr) return false;
  switch (add - base_) {
    case kStatus:
      *data = static_cast<bus::word>(pending_ & enable_);
      return true;
    case kRaw:
      *data = static_cast<bus::word>(pending_);
      return true;
    case kEnable:
      *data = static_cast<bus::word>(enable_);
      return true;
    default:
      *data = 0;
      return true;
  }
}

bool InterruptController::write(bus::addr_t add, bus::word* data) {
  if (add < base_ || add > get_high_add() || data == nullptr) return false;
  switch (add - base_) {
    case kEnable:
      enable_ = static_cast<u32>(*data);
      if ((pending_ & enable_) != 0) irq_event_.notify_delta();
      return true;
    case kAck:
      pending_ &= ~static_cast<u32>(*data);
      return true;
    default:
      return false;  // STATUS and RAW are read-only
  }
}

}  // namespace adriatic::soc
