// Instruction-set-simulator processor: executes a TinyRISC-subset program
// *from memory over the bus*, so instruction fetches are real bus traffic
// that competes with accelerator DMA and DRCF configuration fetches — the
// effect the coarser task-level Processor model cannot show. A small
// direct-mapped line buffer models an instruction cache.
//
// Binary encoding: two bus words per instruction —
//   word0: [5:0] opcode, [9:6] rd, [13:10] rs, [17:14] rt
//   word1: imm (branches/jumps store the target instruction index here)
// Programs are written with the morphosys assembler (RA/DMA opcodes are
// illegal on this core and stop execution with an error).
#pragma once

#include <string>
#include <vector>

#include "bus/interfaces.hpp"
#include "kernel/event.hpp"
#include "kernel/module.hpp"
#include "kernel/port.hpp"
#include "morphosys/isa.hpp"
#include "util/stats.hpp"

namespace adriatic::soc {

/// Encodes a program into its two-words-per-instruction memory image.
[[nodiscard]] std::vector<bus::word> encode_program(
    const morphosys::Program& program);

struct IssConfig {
  kern::Time cycle_time = kern::Time::ns(10);
  bus::addr_t reset_pc = 0;  ///< Word address of the program image.
  /// Instruction line buffer: caches the last fetched line of
  /// `icache_line_words` words. 0 disables caching (every instruction is
  /// two bus reads).
  u32 icache_line_words = 0;
  u32 bus_priority = 0;
};

struct IssStats {
  u64 instructions = 0;
  u64 ifetch_reads = 0;   ///< Bus reads for instruction fetch.
  u64 icache_hits = 0;
  u64 data_reads = 0;
  u64 data_writes = 0;
  bool halted = false;
  bool illegal_instruction = false;
};

class IssProcessor : public kern::Module {
 public:
  IssProcessor(kern::Object& parent, std::string name, IssConfig cfg);

  kern::Port<bus::BusMasterIf> mst_port;

  [[nodiscard]] const IssStats& stats() const noexcept { return stats_; }
  [[nodiscard]] i32 reg(usize i) const { return regs_.at(i); }
  /// Notified when the core halts (HALT or illegal instruction).
  [[nodiscard]] kern::Event& halted_event() noexcept { return halted_event_; }

 private:
  void run();
  [[nodiscard]] bus::word bus_read(bus::addr_t add);
  void bus_write(bus::addr_t add, bus::word value);
  [[nodiscard]] bool fetch(u32 pc, bus::word* w0, bus::word* w1);

  IssConfig cfg_;
  std::array<i32, 16> regs_{};
  IssStats stats_;
  kern::Event halted_event_;

  // Line buffer state.
  std::vector<bus::word> line_;
  bus::addr_t line_base_ = 0;
  bool line_valid_ = false;
};

}  // namespace adriatic::soc
