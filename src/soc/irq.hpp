// Interrupt infrastructure: level-sensitive IRQ lines aggregated by a
// bus-programmable interrupt controller. Lets processor programs block on
// completion interrupts instead of polling status registers — which changes
// the bus-traffic picture the DRCF experiments measure.
//
// Controller register map (word offsets from base):
//   +0 STATUS  (RO) pending-interrupt bitmask (after masking)
//   +1 RAW     (RO) unmasked line state
//   +2 ENABLE  (RW) mask: 1 = line enabled
//   +3 ACK     (WO) write a bitmask to clear latched pending bits
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bus/interfaces.hpp"
#include "kernel/event.hpp"
#include "kernel/module.hpp"
#include "kernel/signal.hpp"

namespace adriatic::soc {

class InterruptController : public kern::Module, public bus::BusSlaveIf {
 public:
  static constexpr u32 kRegWindow = 4;
  enum Reg : u32 { kStatus = 0, kRaw = 1, kEnable = 2, kAck = 3 };

  InterruptController(kern::Object& parent, std::string name,
                      bus::addr_t base);

  /// Registers a source event as IRQ line `index` (0-31). The controller
  /// latches a pending bit every time the event fires.
  void connect(u32 index, kern::Event& source);

  // BusSlaveIf ----------------------------------------------------------------
  [[nodiscard]] bus::addr_t get_low_add() const override { return base_; }
  [[nodiscard]] bus::addr_t get_high_add() const override {
    return base_ + kRegWindow - 1;
  }
  bool read(bus::addr_t add, bus::word* data) override;
  bool write(bus::addr_t add, bus::word* data) override;

  /// Notified whenever a masked pending bit becomes set (what a CPU core's
  /// IRQ input would see).
  [[nodiscard]] kern::Event& irq_event() noexcept { return irq_event_; }
  [[nodiscard]] u32 pending() const noexcept { return pending_ & enable_; }
  [[nodiscard]] u64 interrupts_latched() const noexcept { return latched_; }

 private:
  bus::addr_t base_;
  u32 pending_ = 0;
  u32 enable_ = 0;
  u64 latched_ = 0;
  kern::Event irq_event_;
  std::vector<std::unique_ptr<kern::MethodProcess>> watchers_;
};

}  // namespace adriatic::soc
