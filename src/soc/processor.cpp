#include "soc/processor.hpp"

#include <stdexcept>

#include "kernel/simulation.hpp"

namespace adriatic::soc {

Processor::Processor(kern::Object& parent, std::string name,
                     ProcessorConfig cfg, Program program)
    : Module(parent, std::move(name)),
      mst_port(*this, "mst_port"),
      cfg_(cfg),
      program_(std::move(program)) {
  if (!program_)
    throw std::invalid_argument(this->name() + ": null program");
  thread_ = &spawn_thread("sw", [this] {
    Cpu cpu(*this);
    program_(cpu);
    finished_ = true;
  });
}

kern::Event& Processor::finished_event() noexcept {
  return thread_->terminated_event();
}

void Cpu::compute(u64 instructions) {
  p_->stats_.instructions += instructions;
  const double cycles = static_cast<double>(instructions) * p_->cfg_.cpi;
  const kern::Time t = kern::Time::ps(static_cast<u64>(
      cycles * static_cast<double>(p_->cfg_.cycle_time.picoseconds())));
  if (!t.is_zero()) kern::wait(t);
  p_->stats_.compute_time += t;
}

void Cpu::delay(kern::Time t) {
  if (!t.is_zero()) kern::wait(t);
}

void Cpu::wait_for(kern::Event& e) { kern::wait(e); }

bus::word Cpu::read(bus::addr_t add) {
  bus::word v = 0;
  if (p_->mst_port->read(add, &v, p_->cfg_.bus_priority) !=
      bus::BusStatus::kOk)
    throw std::runtime_error(p_->name() + ": bus read fault at " +
                             std::to_string(add));
  ++p_->stats_.bus_reads;
  return v;
}

void Cpu::write(bus::addr_t add, bus::word value) {
  if (p_->mst_port->write(add, &value, p_->cfg_.bus_priority) !=
      bus::BusStatus::kOk)
    throw std::runtime_error(p_->name() + ": bus write fault at " +
                             std::to_string(add));
  ++p_->stats_.bus_writes;
}

void Cpu::burst_read(bus::addr_t add, std::span<bus::word> out) {
  if (p_->mst_port->burst_read(add, out, p_->cfg_.bus_priority) !=
      bus::BusStatus::kOk)
    throw std::runtime_error(p_->name() + ": burst read fault");
  p_->stats_.bus_reads += out.size();
}

void Cpu::burst_write(bus::addr_t add, std::span<const bus::word> data) {
  if (p_->mst_port->burst_write(add, data, p_->cfg_.bus_priority) !=
      bus::BusStatus::kOk)
    throw std::runtime_error(p_->name() + ": burst write fault");
  p_->stats_.bus_writes += data.size();
}

void Cpu::poll_until(bus::addr_t add, bus::word value,
                     kern::Time poll_interval) {
  for (;;) {
    if (read(add) == value) return;
    if (!poll_interval.is_zero()) kern::wait(poll_interval);
  }
}

kern::Time Cpu::now() const { return p_->sim().now(); }

}  // namespace adriatic::soc
