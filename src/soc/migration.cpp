#include "soc/migration.hpp"

#include <algorithm>
#include <vector>

#include "kernel/sched_trace.hpp"
#include "kernel/simulation.hpp"
#include "morphosys/kernels.hpp"
#include "util/log.hpp"

namespace adriatic::soc {

const char* to_string(MigrationStatus status) {
  switch (status) {
    case MigrationStatus::kOk:
      return "ok";
    case MigrationStatus::kCheckpointRefused:
      return "checkpoint_refused";
    case MigrationStatus::kTransferError:
      return "transfer_error";
    case MigrationStatus::kIntegrityError:
      return "integrity_error";
    case MigrationStatus::kRestoreRejected:
      return "restore_rejected";
    case MigrationStatus::kKernelFailed:
      return "kernel_failed";
  }
  return "?";
}

MigrationController::MigrationController(kern::Object& parent,
                                         std::string name, MigrationConfig cfg)
    : Module(parent, std::move(name)),
      mst_port(*this, "mst_port"),
      cfg_(std::move(cfg)) {
  site_id_ = kern::sched_name_hash(this->name());
  if (!cfg_.transfer_faults.empty()) {
    transfer_interposer_ = std::make_unique<fault::BusFaultInterposer>(
        *this, "transfer_faults", cfg_.transfer_faults);
    transfer_interposer_->set_ledger(&ledger_);
  }
}

bus::BusMasterIf& MigrationController::transfer_master() {
  if (transfer_interposer_ == nullptr) return mst_port[0];
  // Late binding, like the DRCF's fetch interposer: the downstream port
  // binding only exists after elaboration.
  if (!transfer_interposer_->bound()) transfer_interposer_->bind(mst_port[0]);
  return *transfer_interposer_;
}

MigrationController::TransferOutcome MigrationController::transfer_once(
    const std::vector<bus::word>& words, drcf::TaskState* out, u64* moved) {
  bus::BusMasterIf& master = transfer_master();
  const u32 burst = std::max<u32>(cfg_.burst, 1);
  // Push: serialize the snapshot into the staging buffer over the bus.
  for (usize off = 0; off < words.size(); off += burst) {
    const usize chunk = std::min<usize>(burst, words.size() - off);
    const auto st = master.burst_write(
        cfg_.staging_base + static_cast<bus::addr_t>(off),
        std::span<const bus::word>(words.data() + off, chunk), cfg_.priority);
    if (st != bus::BusStatus::kOk) {
      ledger_.append(fault::FaultEventKind::kFetchError,
                     sim().now().picoseconds(), site_id_,
                     cfg_.staging_base + static_cast<bus::addr_t>(off),
                     static_cast<u64>(st));
      return TransferOutcome::kBusError;
    }
    *moved += chunk;
  }
  return pull_and_parse(words.size(), out, moved);
}

MigrationController::TransferOutcome MigrationController::pull_and_parse(
    usize n_words, drcf::TaskState* out, u64* moved) {
  bus::BusMasterIf& master = transfer_master();
  const u32 burst = std::max<u32>(cfg_.burst, 1);
  std::vector<bus::word> buf(n_words, 0);
  for (usize off = 0; off < n_words; off += burst) {
    const usize chunk = std::min<usize>(burst, n_words - off);
    const auto st = master.burst_read(
        cfg_.staging_base + static_cast<bus::addr_t>(off),
        std::span<bus::word>(buf.data() + off, chunk), cfg_.priority);
    if (st != bus::BusStatus::kOk) {
      ledger_.append(fault::FaultEventKind::kFetchError,
                     sim().now().picoseconds(), site_id_,
                     cfg_.staging_base + static_cast<bus::addr_t>(off),
                     static_cast<u64>(st));
      return TransferOutcome::kBusError;
    }
    *moved += chunk;
  }
  // End-to-end integrity: the serialized form carries its own image digest,
  // so bits flipped anywhere on the transfer path are caught here.
  const drcf::RestoreError pe = drcf::TaskState::parse(buf, out);
  if (pe != drcf::RestoreError::kNone) {
    ledger_.append(fault::FaultEventKind::kDigestMismatch,
                   sim().now().picoseconds(), site_id_, cfg_.staging_base,
                   static_cast<u64>(pe));
    return TransferOutcome::kIntegrity;
  }
  return TransferOutcome::kOk;
}

MigrationController::TransferOutcome
MigrationController::transfer_with_recovery(
    const std::vector<bus::word>& words, const drcf::RecoveryConfig& recovery,
    drcf::TaskState* out, u64* moved) {
  u32 attempt = 1;
  u32 scrubs_left = recovery.scrub_refetches;
  kern::Time backoff = recovery.backoff;
  bool had_failed_attempt = false;
  TransferOutcome outcome = transfer_once(words, out, moved);
  for (;;) {
    if (outcome == TransferOutcome::kOk) {
      if (had_failed_attempt) {
        ledger_.append(fault::FaultEventKind::kRecovered,
                       sim().now().picoseconds(), site_id_, cfg_.staging_base,
                       attempt);
        ++stats_.transfer_faults_recovered;
      }
      return outcome;
    }
    had_failed_attempt = true;
    if (outcome == TransferOutcome::kIntegrity &&
        recovery.policy == drcf::RecoveryPolicy::kScrub && scrubs_left > 0) {
      // The staged copy is assumed good (the push completed): re-pull only.
      --scrubs_left;
      ledger_.append(fault::FaultEventKind::kScrub, sim().now().picoseconds(),
                     site_id_, cfg_.staging_base, 0);
      outcome = pull_and_parse(words.size(), out, moved);
      continue;
    }
    if (recovery.policy == drcf::RecoveryPolicy::kRetryBackoff &&
        attempt < recovery.max_attempts) {
      ++attempt;
      ledger_.append(fault::FaultEventKind::kRetry, sim().now().picoseconds(),
                     site_id_, cfg_.staging_base, attempt);
      if (!backoff.is_zero()) kern::wait(backoff);
      backoff = backoff * 2;
      outcome = transfer_once(words, out, moved);
      continue;
    }
    return outcome;  // terminal under kFailFast / kFallbackContext
  }
}

MigrationResult MigrationController::migrate(drcf::Drcf& src, usize src_ctx,
                                             drcf::Drcf& dst, usize dst_ctx) {
  auto snap = src.checkpoint_task(src_ctx);
  if (!snap.has_value()) {
    MigrationResult res;
    res.status = MigrationStatus::kCheckpointRefused;
    ++stats_.failed_migrations;
    ledger_.append(fault::FaultEventKind::kMigrateError,
                   sim().now().picoseconds(), site_id_, 0,
                   static_cast<u64>(src_ctx));
    return res;
  }
  ++stats_.checkpoints;
  return migrate_state(*snap, dst, dst_ctx);
}

MigrationResult MigrationController::migrate_state(
    const drcf::TaskState& state, drcf::Drcf& dst, usize dst_ctx) {
  MigrationResult res;
  const std::vector<bus::word> words = state.to_words();
  drcf::TaskState pulled;
  u64 moved = 0;
  const TransferOutcome outcome =
      transfer_with_recovery(words, dst.config().recovery, &pulled, &moved);
  stats_.state_words_moved += moved;
  res.words_moved = moved;
  if (outcome != TransferOutcome::kOk) {
    res.status = outcome == TransferOutcome::kBusError
                     ? MigrationStatus::kTransferError
                     : MigrationStatus::kIntegrityError;
    ++stats_.failed_migrations;
    ledger_.append(fault::FaultEventKind::kMigrateError,
                   sim().now().picoseconds(), site_id_, cfg_.staging_base,
                   static_cast<u64>(res.status));
    log::warn() << name() << ": migration of context " << state.context_id
                << " failed in transfer (" << to_string(res.status) << ")";
    return res;
  }
  const drcf::RestoreError re = dst.restore_task(dst_ctx, pulled);
  if (re != drcf::RestoreError::kNone) {
    // The destination fabric already appended its own kMigrateError entry.
    res.status = MigrationStatus::kRestoreRejected;
    res.restore_error = re;
    ++stats_.failed_migrations;
    log::warn() << name() << ": restore into context " << dst_ctx << " on "
                << dst.name() << " rejected (" << drcf::to_string(re) << ")";
    return res;
  }
  ++stats_.restores;
  ++stats_.migrations;
  return res;
}

MigrationResult MigrationController::migrate_to_morphosys(
    drcf::Drcf& src, usize src_ctx, const MorphosysHandoff& handoff) {
  MigrationResult res;
  if (handoff.machine == nullptr || handoff.contexts.empty()) {
    res.status = MigrationStatus::kKernelFailed;
    ++stats_.failed_migrations;
    return res;
  }
  auto snap = src.checkpoint_task(src_ctx);
  if (!snap.has_value()) {
    res.status = MigrationStatus::kCheckpointRefused;
    ++stats_.failed_migrations;
    ledger_.append(fault::FaultEventKind::kMigrateError,
                   sim().now().picoseconds(), site_id_, 0,
                   static_cast<u64>(src_ctx));
    return res;
  }
  ++stats_.checkpoints;

  // The handed-off state still crosses the bus: push the serialized
  // snapshot to the staging buffer (the transfer cost of leaving the DRCF
  // domain), then interpret its register window to find the task's data.
  bus::BusMasterIf& master = transfer_master();
  const u32 burst = std::max<u32>(cfg_.burst, 1);
  const std::vector<bus::word> words = snap->to_words();
  u64 moved = 0;
  for (usize off = 0; off < words.size(); off += burst) {
    const usize chunk = std::min<usize>(burst, words.size() - off);
    const auto st = master.burst_write(
        cfg_.staging_base + static_cast<bus::addr_t>(off),
        std::span<const bus::word>(words.data() + off, chunk), cfg_.priority);
    if (st != bus::BusStatus::kOk) {
      ledger_.append(fault::FaultEventKind::kFetchError,
                     sim().now().picoseconds(), site_id_,
                     cfg_.staging_base + static_cast<bus::addr_t>(off),
                     static_cast<u64>(st));
      res.status = MigrationStatus::kTransferError;
      res.words_moved = moved;
      stats_.state_words_moved += moved;
      ++stats_.failed_migrations;
      return res;
    }
    moved += chunk;
  }

  // HwAccel register-map contract (soc/hwacc.hpp): SRC/DST/LEN live at word
  // offsets 2/3/4 of the window. That is what makes a checkpointed
  // accelerator task interpretable by a foreign fabric.
  if (snap->window_words < 5) {
    res.status = MigrationStatus::kRestoreRejected;
    res.restore_error = drcf::RestoreError::kGeometryMismatch;
    res.words_moved = moved;
    stats_.state_words_moved += moved;
    ++stats_.failed_migrations;
    ledger_.append(fault::FaultEventKind::kMigrateError,
                   sim().now().picoseconds(), site_id_, cfg_.staging_base,
                   static_cast<u64>(res.restore_error));
    return res;
  }
  const auto data_src = static_cast<bus::addr_t>(snap->image[2]);
  const auto data_dst = static_cast<bus::addr_t>(snap->image[3]);
  const auto n_words = static_cast<usize>(static_cast<u32>(snap->image[4]));

  // Stream the task's input from system memory into the machine.
  std::vector<bus::word> data(n_words, 0);
  for (usize off = 0; off < n_words; off += burst) {
    const usize chunk = std::min<usize>(burst, n_words - off);
    const auto st = master.burst_read(
        data_src + static_cast<bus::addr_t>(off),
        std::span<bus::word>(data.data() + off, chunk), cfg_.priority);
    if (st != bus::BusStatus::kOk) {
      ledger_.append(fault::FaultEventKind::kFetchError,
                     sim().now().picoseconds(), site_id_,
                     data_src + static_cast<bus::addr_t>(off),
                     static_cast<u64>(st));
      res.status = MigrationStatus::kTransferError;
      res.words_moved = moved;
      stats_.state_words_moved += moved;
      ++stats_.failed_migrations;
      return res;
    }
    moved += chunk;
  }
  handoff.machine->mem_load(handoff.machine_src, data);

  const bool halted = morphosys::run_tile_kernel(
      *handoff.machine, handoff.contexts, handoff.machine_src,
      handoff.machine_dst, n_words, handoff.ctx_image_addr, handoff.plane,
      handoff.max_cycles);
  if (!halted) {
    res.status = MigrationStatus::kKernelFailed;
    res.words_moved = moved;
    stats_.state_words_moved += moved;
    ++stats_.failed_migrations;
    ledger_.append(fault::FaultEventKind::kMigrateError,
                   sim().now().picoseconds(), site_id_, data_src,
                   static_cast<u64>(res.status));
    return res;
  }

  // Stream the results back to the task's own destination address.
  std::vector<bus::word> out(n_words, 0);
  for (usize i = 0; i < n_words; ++i)
    out[i] = handoff.machine->mem_read(handoff.machine_dst + i);
  for (usize off = 0; off < n_words; off += burst) {
    const usize chunk = std::min<usize>(burst, n_words - off);
    const auto st = master.burst_write(
        data_dst + static_cast<bus::addr_t>(off),
        std::span<const bus::word>(out.data() + off, chunk), cfg_.priority);
    if (st != bus::BusStatus::kOk) {
      ledger_.append(fault::FaultEventKind::kFetchError,
                     sim().now().picoseconds(), site_id_,
                     data_dst + static_cast<bus::addr_t>(off),
                     static_cast<u64>(st));
      res.status = MigrationStatus::kTransferError;
      res.words_moved = moved;
      stats_.state_words_moved += moved;
      ++stats_.failed_migrations;
      return res;
    }
    moved += chunk;
  }
  res.words_moved = moved;
  stats_.state_words_moved += moved;
  ++stats_.morphosys_handoffs;
  return res;
}

}  // namespace adriatic::soc
