#include "soc/traffic_gen.hpp"

#include <vector>

#include "kernel/simulation.hpp"

namespace adriatic::soc {

TrafficGen::TrafficGen(kern::Object& parent, std::string name,
                       TrafficGenConfig cfg)
    : Module(parent, std::move(name)),
      mst_port(*this, "mst_port"),
      cfg_(cfg),
      rng_(cfg.seed) {
  spawn_thread("gen", [this] { run(); });
}

void TrafficGen::run() {
  std::vector<bus::word> buf;
  for (u64 n = 0; cfg_.max_bursts == 0 || n < cfg_.max_bursts; ++n) {
    if (!cfg_.period.is_zero()) kern::wait(cfg_.period);
    const u32 len = std::max<u32>(1, cfg_.burst_words);
    const u32 span = cfg_.window_words > len ? cfg_.window_words - len : 1;
    const bus::addr_t a =
        cfg_.base + static_cast<bus::addr_t>(rng_.next_below(span));
    buf.assign(len, static_cast<bus::word>(rng_.next()));
    const kern::Time t0 = sim().now();
    if (rng_.next_bool(cfg_.write_fraction)) {
      mst_port->burst_write(a, buf, cfg_.priority);
    } else {
      mst_port->burst_read(a, buf, cfg_.priority);
    }
    stats_.total_latency += sim().now() - t0;
    ++stats_.bursts;
    stats_.words += len;
  }
}

}  // namespace adriatic::soc
