// DMA controller: a bus slave programmed with (src, dst, len) that moves
// data as a bus master — Fig. 1's DMA block, and the agent that loads DRCF
// contexts in architectures with a hardware configuration loader.
//
// Register map (word offsets from base):
//   +0 CTRL    write 1 = start
//   +1 STATUS  0 idle / 1 busy / 2 done (write 0 clears)
//   +2 SRC     +3 DST    +4 LEN
#pragma once

#include <string>

#include "bus/interfaces.hpp"
#include "kernel/event.hpp"
#include "kernel/module.hpp"
#include "kernel/port.hpp"
#include "util/stats.hpp"

namespace adriatic::soc {

struct DmaStats {
  u64 transfers = 0;     ///< Completed descriptor runs.
  u64 words_moved = 0;
};

class Dma : public kern::Module, public bus::BusSlaveIf {
 public:
  static constexpr u32 kRegWindow = 8;
  enum Reg : u32 { kCtrl = 0, kStatus = 1, kSrc = 2, kDst = 3, kLen = 4 };
  enum Status : bus::word { kIdle = 0, kBusy = 1, kDone = 2 };

  Dma(kern::Object& parent, std::string name, bus::addr_t base,
      usize chunk_words = 16);

  kern::Port<bus::BusMasterIf> mst_port;

  [[nodiscard]] bus::addr_t get_low_add() const override { return base_; }
  [[nodiscard]] bus::addr_t get_high_add() const override {
    return base_ + kRegWindow - 1;
  }
  bool read(bus::addr_t add, bus::word* data) override;
  bool write(bus::addr_t add, bus::word* data) override;

  [[nodiscard]] kern::Event& done_event() noexcept { return done_event_; }
  [[nodiscard]] const DmaStats& stats() const noexcept { return stats_; }

 private:
  void worker();

  bus::addr_t base_;
  usize chunk_words_;
  bus::word status_ = kIdle;
  bus::word src_ = 0;
  bus::word dst_ = 0;
  bus::word len_ = 0;
  kern::Event start_event_;
  kern::Event done_event_;
  DmaStats stats_;
};

}  // namespace adriatic::soc
