// MigrationController: moves a checkpointed hardware task between two DRCF
// instances — or hands it off to a MorphoSys machine when the context has a
// kernel equivalent there — using real bus traffic for the state transfer
// (Wicaksana et al.'s heterogeneous context-switch method on top of the
// paper's DRCF model).
//
// The transfer is the modeled cost of migration: the serialized TaskState is
// pushed to a staging buffer in memory and pulled back out in bursts, so
// arbiter statistics, fault interposers and the loose-timed direct path all
// see it. A fault injected mid-transfer triggers the *destination* fabric's
// RecoveryPolicy ladder: kRetryBackoff re-runs the transfer with exponential
// backoff, kScrub re-pulls a payload that failed its integrity check, and
// kFailFast/kFallbackContext fail the migration terminally — the checkpoint
// is non-destructive, so the task stays runnable on the source.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bus/interfaces.hpp"
#include "drcf/drcf.hpp"
#include "drcf/task_state.hpp"
#include "fault/interposer.hpp"
#include "fault/ledger.hpp"
#include "fault/plan.hpp"
#include "kernel/module.hpp"
#include "kernel/port.hpp"
#include "morphosys/isa.hpp"
#include "morphosys/machine.hpp"

namespace adriatic::soc {

struct MigrationConfig {
  /// Word address of the staging buffer the serialized state is pushed to
  /// (and pulled from) during a transfer. Must be mapped writable memory,
  /// large enough for TaskState::kHeaderWords + the largest window.
  bus::addr_t staging_base = 0;
  /// Words per bus burst during the transfer.
  u32 burst = 16;
  /// Bus priority of state-transfer traffic.
  u32 priority = 0;
  /// Fault plan applied to the transfer path only (a master-path interposer
  /// between the controller and its mst_port binding). Empty = no injection
  /// and no interposer.
  fault::FaultPlan transfer_faults;
};

struct MigrationStats {
  u64 migrations = 0;        ///< Completed DRCF-to-DRCF migrations.
  u64 checkpoints = 0;       ///< Source checkpoints taken by this controller.
  u64 restores = 0;          ///< Destination restores that succeeded.
  u64 state_words_moved = 0; ///< Transfer words pushed + pulled (incl. retries).
  u64 transfer_faults_recovered = 0;  ///< Transfers that succeeded after
                                      ///  at least one failed attempt.
  u64 failed_migrations = 0; ///< Migrations that failed terminally.
  u64 morphosys_handoffs = 0;  ///< Tasks handed off to a MorphoSys machine.
};

enum class MigrationStatus : u8 {
  kOk = 0,
  kCheckpointRefused = 1,  ///< Source context was not quiescent.
  kTransferError = 2,      ///< Bus push/pull failed after recovery.
  kIntegrityError = 3,     ///< Pulled image failed its check after recovery.
  kRestoreRejected = 4,    ///< Destination fabric rejected the restore.
  kKernelFailed = 5,       ///< MorphoSys kernel did not complete.
};

[[nodiscard]] const char* to_string(MigrationStatus status);

struct MigrationResult {
  MigrationStatus status = MigrationStatus::kOk;
  drcf::RestoreError restore_error = drcf::RestoreError::kNone;
  u64 words_moved = 0;  ///< Transfer words this migration put on the bus.
  [[nodiscard]] bool ok() const noexcept {
    return status == MigrationStatus::kOk;
  }
};

/// Describes the MorphoSys equivalent of a DRCF context: the kernel's
/// context program plus where the handed-off task reads its input and
/// writes its output. The controller interprets the checkpointed HwAccel
/// register window (SRC/DST/LEN at word offsets 2/3/4 — the hwacc.hpp
/// register-map contract) to find the task's data.
struct MorphosysHandoff {
  morphosys::Machine* machine = nullptr;
  std::vector<morphosys::Context> contexts;  ///< The kernel equivalent.
  usize machine_src = 0x1000;       ///< Input staging in machine memory.
  usize machine_dst = 0x2000;       ///< Output staging in machine memory.
  usize ctx_image_addr = 0x6000;    ///< Context images in machine memory.
  usize plane = 0;
  u64 max_cycles = 10'000'000;
};

class MigrationController : public kern::Module {
 public:
  MigrationController(kern::Object& parent, std::string name,
                      MigrationConfig cfg = {});

  /// Master port the state transfer travels over; bind to the system bus
  /// (or a direct link) after elaboration.
  kern::Port<bus::BusMasterIf> mst_port;

  /// Checkpoint `src_ctx` on `src`, transfer the state over the bus, and
  /// restore it into `dst_ctx` on `dst`. Must be called from a simulation
  /// thread (the transfer blocks on bus arbitration).
  MigrationResult migrate(drcf::Drcf& src, usize src_ctx, drcf::Drcf& dst,
                          usize dst_ctx);

  /// Transfer + restore of an already-captured state (e.g. a snapshot the
  /// scheduler parked at preemption, via Drcf::take_parked_snapshot).
  MigrationResult migrate_state(const drcf::TaskState& state, drcf::Drcf& dst,
                                usize dst_ctx);

  /// Heterogeneous handoff: checkpoint `src_ctx`, push its state over the
  /// bus, then run the context's MorphoSys kernel equivalent over the data
  /// the checkpointed registers point at — input is burst-read from system
  /// memory, results are burst-written back to the task's destination
  /// address. The DRCF-side task is consumed, not resumed.
  MigrationResult migrate_to_morphosys(drcf::Drcf& src, usize src_ctx,
                                       const MorphosysHandoff& handoff);

  [[nodiscard]] const MigrationStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MigrationConfig& config() const noexcept { return cfg_; }
  /// Faults injected into and observed on the transfer path. Kept separate
  /// from the fabrics' ledgers: a clean migration leaves both untouched.
  [[nodiscard]] const fault::FaultLedger& fault_ledger() const noexcept {
    return ledger_;
  }

 private:
  /// Outcome of one complete push+pull+verify transfer attempt.
  enum class TransferOutcome : u8 { kOk = 0, kBusError = 1, kIntegrity = 2 };

  /// The master interface transfers go through: the fault interposer when a
  /// transfer_faults plan is configured, the bare mst_port binding otherwise.
  [[nodiscard]] bus::BusMasterIf& transfer_master();
  /// One transfer attempt: chunked burst-write of `words` to the staging
  /// buffer, chunked burst-read back, parse + integrity check into `out`.
  TransferOutcome transfer_once(const std::vector<bus::word>& words,
                                drcf::TaskState* out, u64* moved);
  /// Pull-only half of a transfer (the scrub re-fetch path).
  TransferOutcome pull_and_parse(usize n_words, drcf::TaskState* out,
                                 u64* moved);
  /// The full transfer with the destination's RecoveryConfig applied.
  TransferOutcome transfer_with_recovery(const std::vector<bus::word>& words,
                                         const drcf::RecoveryConfig& recovery,
                                         drcf::TaskState* out, u64* moved);

  MigrationConfig cfg_;
  MigrationStats stats_;
  fault::FaultLedger ledger_;
  std::unique_ptr<fault::BusFaultInterposer> transfer_interposer_;
  u64 site_id_ = 0;
};

}  // namespace adriatic::soc
