// Software execution model: a processor running a designer-supplied task
// program against the bus. This is the "SW functionality on CPU" half of the
// paper's Fig. 1 architecture and the temporal-computation end of Fig. 2.
#pragma once

#include <functional>
#include <span>
#include <string>

#include "bus/interfaces.hpp"
#include "kernel/event.hpp"
#include "kernel/module.hpp"
#include "kernel/port.hpp"
#include "util/stats.hpp"

namespace adriatic::soc {

struct ProcessorConfig {
  kern::Time cycle_time = kern::Time::ns(10);  ///< 100 MHz.
  double cpi = 1.2;        ///< Average cycles per instruction.
  u32 bus_priority = 0;    ///< Priority for the processor's bus accesses.
};

struct ProcessorStats {
  u64 instructions = 0;
  u64 bus_reads = 0;
  u64 bus_writes = 0;
  kern::Time compute_time;
};

class Processor;

/// Execution context a task program runs against; every operation advances
/// simulated time and updates the processor statistics.
class Cpu {
 public:
  /// Executes `instructions` instructions' worth of computation.
  void compute(u64 instructions);
  /// Explicit stall (e.g. waiting on a timer).
  void delay(kern::Time t);
  void wait_for(kern::Event& e);

  [[nodiscard]] bus::word read(bus::addr_t add);
  void write(bus::addr_t add, bus::word value);
  void burst_read(bus::addr_t add, std::span<bus::word> out);
  void burst_write(bus::addr_t add, std::span<const bus::word> data);

  /// Polls `add` until it reads `value`, with `poll_interval` between polls.
  void poll_until(bus::addr_t add, bus::word value,
                  kern::Time poll_interval);

  [[nodiscard]] kern::Time now() const;

 private:
  friend class Processor;
  explicit Cpu(Processor& p) : p_(&p) {}
  Processor* p_;
};

class Processor : public kern::Module {
 public:
  using Program = std::function<void(Cpu&)>;

  Processor(kern::Object& parent, std::string name, ProcessorConfig cfg,
            Program program);

  kern::Port<bus::BusMasterIf> mst_port;

  [[nodiscard]] const ProcessorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ProcessorConfig& config() const noexcept { return cfg_; }
  /// Notified when the program returns.
  [[nodiscard]] kern::Event& finished_event() noexcept;
  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  friend class Cpu;

  ProcessorConfig cfg_;
  Program program_;
  ProcessorStats stats_;
  bool finished_ = false;
  kern::ThreadProcess* thread_ = nullptr;
};

}  // namespace adriatic::soc
