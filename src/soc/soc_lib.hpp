// Umbrella header for the SoC building blocks.
#pragma once

#include "soc/dma.hpp"
#include "soc/hwacc.hpp"
#include "soc/irq.hpp"
#include "soc/iss.hpp"
#include "soc/processor.hpp"
#include "soc/traffic_gen.hpp"
