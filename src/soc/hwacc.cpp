#include "soc/hwacc.hpp"

#include <stdexcept>
#include <vector>

#include "kernel/simulation.hpp"

namespace adriatic::soc {

HwAccel::HwAccel(kern::Object& parent, std::string name, bus::addr_t base,
                 accel::KernelSpec spec, kern::Time cycle_time)
    : Module(parent, std::move(name)),
      clk(*this, "clk", /*min_bindings=*/0),
      mst_port(*this, "mst_port"),
      base_(base),
      spec_(std::move(spec)),
      cycle_time_(cycle_time),
      start_event_(sim(), this->name() + ".start"),
      started_event_(sim(), this->name() + ".started"),
      done_event_(sim(), this->name() + ".done") {
  if (!spec_.valid())
    throw std::invalid_argument(this->name() + ": invalid kernel spec");
  spawn_thread("worker", [this] { worker(); }).set_daemon();
}

bool HwAccel::read(bus::addr_t add, bus::word* data) {
  if (add < base_ || add > get_high_add() || data == nullptr) return false;
  ++stats_.reg_accesses;
  switch (add - base_) {
    case kCtrl:
      *data = 0;
      return true;
    case kStatus:
      *data = status_;
      return true;
    case kSrc:
      *data = src_;
      return true;
    case kDst:
      *data = dst_;
      return true;
    case kLen:
      *data = len_;
      return true;
    case kOutLen:
      *data = out_len_;
      return true;
    default:
      *data = 0;
      return true;
  }
}

bool HwAccel::write(bus::addr_t add, bus::word* data) {
  if (add < base_ || add > get_high_add() || data == nullptr) return false;
  ++stats_.reg_accesses;
  switch (add - base_) {
    case kCtrl:
      if (*data == 1) {
        if (status_ == kBusy) return false;  // already running
        status_ = kBusy;
        start_event_.notify_delta();
      }
      return true;
    case kStatus:
      if (*data == 0 && status_ == kDone) status_ = kIdle;
      return true;
    case kSrc:
      src_ = *data;
      return true;
    case kDst:
      dst_ = *data;
      return true;
    case kLen:
      len_ = *data;
      return true;
    default:
      return false;  // read-only or reserved
  }
}

void HwAccel::worker() {
  for (;;) {
    kern::wait(start_event_);
    started_event_.notify_delta();
    ++stats_.invocations;

    const usize len = static_cast<usize>(len_);
    std::vector<bus::word> input(len, 0);
    if (len > 0) {
      mst_port->burst_read(static_cast<bus::addr_t>(src_), input, 0);
      stats_.words_in += len;
    }

    // Datapath time: cycles from the kernel profile at this clock.
    const kern::Time compute = cycle_time_ * spec_.hw_cycles(len);
    if (!compute.is_zero()) kern::wait(compute);
    stats_.compute_time += compute;

    std::vector<bus::word> output = spec_.fn(input);
    out_len_ = static_cast<bus::word>(output.size());
    if (!output.empty()) {
      mst_port->burst_write(static_cast<bus::addr_t>(dst_), output, 0);
      stats_.words_out += output.size();
    }

    status_ = kDone;
    done_event_.notify_delta();
  }
}

}  // namespace adriatic::soc
