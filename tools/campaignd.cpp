// campaignd: the campaign simulation daemon. One process owns the worker
// pool, the write-ahead journal and the digest-keyed result cache; clients
// connect over a Unix-domain socket, SUBMIT job specs and stream back
// RESULT frames as jobs finish (see docs/service.md for the wire format).
//
// Build & run:  ./build/tools/campaignd --socket /tmp/campaignd.sock
//                 [--jobs N] [--processes] [--name NAME]
//                 [--journal FILE.wal | --resume FILE.wal] [--cache FILE]
//
// SIGINT/SIGTERM stop the daemon gracefully: in-flight simulations get
// request_stop(), their records are journaled as interrupted (still
// streamed to waiting clients), the journal is flushed and the exit status
// is 130. A daemon restarted on the same --cache (or with --resume) serves
// every previously finished spec without re-simulating.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "campaign/campaign.hpp"
#include "service/server.hpp"

using namespace adriatic;

int main(int argc, char** argv) {
  service::ServerOptions opt;
  const auto usage = [] {
    std::cerr << "usage: campaignd --socket PATH [--jobs N] [--processes]\n"
                 "                 [--name NAME] [--journal FILE.wal | "
                 "--resume FILE.wal]\n"
                 "                 [--cache FILE]\n";
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      opt.socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opt.threads = static_cast<usize>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--processes") == 0) {
      opt.processes = true;
    } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      opt.campaign_name = argv[++i];
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      opt.journal_path = argv[++i];
      opt.resume = false;
    } else if (std::strcmp(argv[i], "--resume") == 0 && i + 1 < argc) {
      opt.journal_path = argv[++i];
      opt.resume = true;
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      opt.cache_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (opt.socket_path.empty()) return usage();

  campaign::install_stop_signal_handlers();
  service::CampaignServer server(opt);
  const int rc = server.serve();
  if (rc == 130)
    std::cerr << "campaignd: interrupted — journal/cache hold partial "
                 "results\n";
  return rc;
}
