file(REMOVE_RECURSE
  "CMakeFiles/morphosys_test.dir/morphosys_test.cpp.o"
  "CMakeFiles/morphosys_test.dir/morphosys_test.cpp.o.d"
  "morphosys_test"
  "morphosys_test.pdb"
  "morphosys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphosys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
