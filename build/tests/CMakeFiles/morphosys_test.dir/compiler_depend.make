# Empty compiler generated dependencies file for morphosys_test.
# This may be replaced when dependencies are built.
