file(REMOVE_RECURSE
  "CMakeFiles/drcf_test.dir/drcf_test.cpp.o"
  "CMakeFiles/drcf_test.dir/drcf_test.cpp.o.d"
  "drcf_test"
  "drcf_test.pdb"
  "drcf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drcf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
