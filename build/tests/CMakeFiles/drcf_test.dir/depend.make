# Empty dependencies file for drcf_test.
# This may be replaced when dependencies are built.
