
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bus_test.cpp" "tests/CMakeFiles/bus_test.dir/bus_test.cpp.o" "gcc" "tests/CMakeFiles/bus_test.dir/bus_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/adriatic_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/adriatic_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/adriatic_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/adriatic_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/adriatic_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/adriatic_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/adriatic_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/adriatic_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/adriatic_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/morphosys/CMakeFiles/adriatic_morphosys.dir/DependInfo.cmake"
  "/root/repo/build/src/drcf/CMakeFiles/adriatic_drcf.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/adriatic_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/adriatic_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adriatic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
