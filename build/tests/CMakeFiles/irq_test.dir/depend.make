# Empty dependencies file for irq_test.
# This may be replaced when dependencies are built.
