file(REMOVE_RECURSE
  "CMakeFiles/kernel_channels_test.dir/kernel_channels_test.cpp.o"
  "CMakeFiles/kernel_channels_test.dir/kernel_channels_test.cpp.o.d"
  "kernel_channels_test"
  "kernel_channels_test.pdb"
  "kernel_channels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_channels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
