# Empty dependencies file for kernel_channels_test.
# This may be replaced when dependencies are built.
