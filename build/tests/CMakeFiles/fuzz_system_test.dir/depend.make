# Empty dependencies file for fuzz_system_test.
# This may be replaced when dependencies are built.
