file(REMOVE_RECURSE
  "CMakeFiles/fuzz_system_test.dir/fuzz_system_test.cpp.o"
  "CMakeFiles/fuzz_system_test.dir/fuzz_system_test.cpp.o.d"
  "fuzz_system_test"
  "fuzz_system_test.pdb"
  "fuzz_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
