# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_channels_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_stress_test[1]_include.cmake")
include("/root/repo/build/tests/bus_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/accel_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/drcf_test[1]_include.cmake")
include("/root/repo/build/tests/soc_test[1]_include.cmake")
include("/root/repo/build/tests/irq_test[1]_include.cmake")
include("/root/repo/build/tests/iss_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/morphosys_test[1]_include.cmake")
include("/root/repo/build/tests/dse_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_system_test[1]_include.cmake")
