file(REMOVE_RECURSE
  "CMakeFiles/adriatic_dse.dir/advisor.cpp.o"
  "CMakeFiles/adriatic_dse.dir/advisor.cpp.o.d"
  "CMakeFiles/adriatic_dse.dir/pareto.cpp.o"
  "CMakeFiles/adriatic_dse.dir/pareto.cpp.o.d"
  "CMakeFiles/adriatic_dse.dir/profiler.cpp.o"
  "CMakeFiles/adriatic_dse.dir/profiler.cpp.o.d"
  "libadriatic_dse.a"
  "libadriatic_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
