# Empty dependencies file for adriatic_dse.
# This may be replaced when dependencies are built.
