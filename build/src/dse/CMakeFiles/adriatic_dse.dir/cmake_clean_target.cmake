file(REMOVE_RECURSE
  "libadriatic_dse.a"
)
