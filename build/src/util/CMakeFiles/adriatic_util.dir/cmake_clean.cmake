file(REMOVE_RECURSE
  "CMakeFiles/adriatic_util.dir/log.cpp.o"
  "CMakeFiles/adriatic_util.dir/log.cpp.o.d"
  "CMakeFiles/adriatic_util.dir/table.cpp.o"
  "CMakeFiles/adriatic_util.dir/table.cpp.o.d"
  "libadriatic_util.a"
  "libadriatic_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
