# Empty compiler generated dependencies file for adriatic_util.
# This may be replaced when dependencies are built.
