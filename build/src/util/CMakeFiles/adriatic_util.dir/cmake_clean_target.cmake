file(REMOVE_RECURSE
  "libadriatic_util.a"
)
