file(REMOVE_RECURSE
  "libadriatic_soc.a"
)
