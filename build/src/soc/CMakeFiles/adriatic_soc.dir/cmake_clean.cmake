file(REMOVE_RECURSE
  "CMakeFiles/adriatic_soc.dir/dma.cpp.o"
  "CMakeFiles/adriatic_soc.dir/dma.cpp.o.d"
  "CMakeFiles/adriatic_soc.dir/hwacc.cpp.o"
  "CMakeFiles/adriatic_soc.dir/hwacc.cpp.o.d"
  "CMakeFiles/adriatic_soc.dir/irq.cpp.o"
  "CMakeFiles/adriatic_soc.dir/irq.cpp.o.d"
  "CMakeFiles/adriatic_soc.dir/iss.cpp.o"
  "CMakeFiles/adriatic_soc.dir/iss.cpp.o.d"
  "CMakeFiles/adriatic_soc.dir/processor.cpp.o"
  "CMakeFiles/adriatic_soc.dir/processor.cpp.o.d"
  "CMakeFiles/adriatic_soc.dir/traffic_gen.cpp.o"
  "CMakeFiles/adriatic_soc.dir/traffic_gen.cpp.o.d"
  "libadriatic_soc.a"
  "libadriatic_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
