
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/dma.cpp" "src/soc/CMakeFiles/adriatic_soc.dir/dma.cpp.o" "gcc" "src/soc/CMakeFiles/adriatic_soc.dir/dma.cpp.o.d"
  "/root/repo/src/soc/hwacc.cpp" "src/soc/CMakeFiles/adriatic_soc.dir/hwacc.cpp.o" "gcc" "src/soc/CMakeFiles/adriatic_soc.dir/hwacc.cpp.o.d"
  "/root/repo/src/soc/irq.cpp" "src/soc/CMakeFiles/adriatic_soc.dir/irq.cpp.o" "gcc" "src/soc/CMakeFiles/adriatic_soc.dir/irq.cpp.o.d"
  "/root/repo/src/soc/iss.cpp" "src/soc/CMakeFiles/adriatic_soc.dir/iss.cpp.o" "gcc" "src/soc/CMakeFiles/adriatic_soc.dir/iss.cpp.o.d"
  "/root/repo/src/soc/processor.cpp" "src/soc/CMakeFiles/adriatic_soc.dir/processor.cpp.o" "gcc" "src/soc/CMakeFiles/adriatic_soc.dir/processor.cpp.o.d"
  "/root/repo/src/soc/traffic_gen.cpp" "src/soc/CMakeFiles/adriatic_soc.dir/traffic_gen.cpp.o" "gcc" "src/soc/CMakeFiles/adriatic_soc.dir/traffic_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/adriatic_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/adriatic_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/adriatic_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/morphosys/CMakeFiles/adriatic_morphosys.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adriatic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
