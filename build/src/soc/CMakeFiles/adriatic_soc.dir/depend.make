# Empty dependencies file for adriatic_soc.
# This may be replaced when dependencies are built.
