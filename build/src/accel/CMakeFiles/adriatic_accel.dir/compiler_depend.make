# Empty compiler generated dependencies file for adriatic_accel.
# This may be replaced when dependencies are built.
