
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/aes.cpp" "src/accel/CMakeFiles/adriatic_accel.dir/aes.cpp.o" "gcc" "src/accel/CMakeFiles/adriatic_accel.dir/aes.cpp.o.d"
  "/root/repo/src/accel/crc.cpp" "src/accel/CMakeFiles/adriatic_accel.dir/crc.cpp.o" "gcc" "src/accel/CMakeFiles/adriatic_accel.dir/crc.cpp.o.d"
  "/root/repo/src/accel/dct.cpp" "src/accel/CMakeFiles/adriatic_accel.dir/dct.cpp.o" "gcc" "src/accel/CMakeFiles/adriatic_accel.dir/dct.cpp.o.d"
  "/root/repo/src/accel/fft.cpp" "src/accel/CMakeFiles/adriatic_accel.dir/fft.cpp.o" "gcc" "src/accel/CMakeFiles/adriatic_accel.dir/fft.cpp.o.d"
  "/root/repo/src/accel/fir.cpp" "src/accel/CMakeFiles/adriatic_accel.dir/fir.cpp.o" "gcc" "src/accel/CMakeFiles/adriatic_accel.dir/fir.cpp.o.d"
  "/root/repo/src/accel/matmul.cpp" "src/accel/CMakeFiles/adriatic_accel.dir/matmul.cpp.o" "gcc" "src/accel/CMakeFiles/adriatic_accel.dir/matmul.cpp.o.d"
  "/root/repo/src/accel/motion.cpp" "src/accel/CMakeFiles/adriatic_accel.dir/motion.cpp.o" "gcc" "src/accel/CMakeFiles/adriatic_accel.dir/motion.cpp.o.d"
  "/root/repo/src/accel/viterbi.cpp" "src/accel/CMakeFiles/adriatic_accel.dir/viterbi.cpp.o" "gcc" "src/accel/CMakeFiles/adriatic_accel.dir/viterbi.cpp.o.d"
  "/root/repo/src/accel/zigzag_rle.cpp" "src/accel/CMakeFiles/adriatic_accel.dir/zigzag_rle.cpp.o" "gcc" "src/accel/CMakeFiles/adriatic_accel.dir/zigzag_rle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bus/CMakeFiles/adriatic_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adriatic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/adriatic_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
