file(REMOVE_RECURSE
  "libadriatic_accel.a"
)
