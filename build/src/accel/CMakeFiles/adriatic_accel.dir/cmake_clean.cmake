file(REMOVE_RECURSE
  "CMakeFiles/adriatic_accel.dir/aes.cpp.o"
  "CMakeFiles/adriatic_accel.dir/aes.cpp.o.d"
  "CMakeFiles/adriatic_accel.dir/crc.cpp.o"
  "CMakeFiles/adriatic_accel.dir/crc.cpp.o.d"
  "CMakeFiles/adriatic_accel.dir/dct.cpp.o"
  "CMakeFiles/adriatic_accel.dir/dct.cpp.o.d"
  "CMakeFiles/adriatic_accel.dir/fft.cpp.o"
  "CMakeFiles/adriatic_accel.dir/fft.cpp.o.d"
  "CMakeFiles/adriatic_accel.dir/fir.cpp.o"
  "CMakeFiles/adriatic_accel.dir/fir.cpp.o.d"
  "CMakeFiles/adriatic_accel.dir/matmul.cpp.o"
  "CMakeFiles/adriatic_accel.dir/matmul.cpp.o.d"
  "CMakeFiles/adriatic_accel.dir/motion.cpp.o"
  "CMakeFiles/adriatic_accel.dir/motion.cpp.o.d"
  "CMakeFiles/adriatic_accel.dir/viterbi.cpp.o"
  "CMakeFiles/adriatic_accel.dir/viterbi.cpp.o.d"
  "CMakeFiles/adriatic_accel.dir/zigzag_rle.cpp.o"
  "CMakeFiles/adriatic_accel.dir/zigzag_rle.cpp.o.d"
  "libadriatic_accel.a"
  "libadriatic_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
