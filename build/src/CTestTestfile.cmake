# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("kernel")
subdirs("bus")
subdirs("memory")
subdirs("accel")
subdirs("comm")
subdirs("soc")
subdirs("drcf")
subdirs("netlist")
subdirs("platform")
subdirs("transform")
subdirs("morphosys")
subdirs("estimate")
subdirs("dse")
