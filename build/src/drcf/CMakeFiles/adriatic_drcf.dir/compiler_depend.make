# Empty compiler generated dependencies file for adriatic_drcf.
# This may be replaced when dependencies are built.
