file(REMOVE_RECURSE
  "CMakeFiles/adriatic_drcf.dir/drcf.cpp.o"
  "CMakeFiles/adriatic_drcf.dir/drcf.cpp.o.d"
  "CMakeFiles/adriatic_drcf.dir/power_trace.cpp.o"
  "CMakeFiles/adriatic_drcf.dir/power_trace.cpp.o.d"
  "CMakeFiles/adriatic_drcf.dir/slot_table.cpp.o"
  "CMakeFiles/adriatic_drcf.dir/slot_table.cpp.o.d"
  "CMakeFiles/adriatic_drcf.dir/technology.cpp.o"
  "CMakeFiles/adriatic_drcf.dir/technology.cpp.o.d"
  "libadriatic_drcf.a"
  "libadriatic_drcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_drcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
