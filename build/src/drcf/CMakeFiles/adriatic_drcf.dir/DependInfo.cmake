
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drcf/drcf.cpp" "src/drcf/CMakeFiles/adriatic_drcf.dir/drcf.cpp.o" "gcc" "src/drcf/CMakeFiles/adriatic_drcf.dir/drcf.cpp.o.d"
  "/root/repo/src/drcf/power_trace.cpp" "src/drcf/CMakeFiles/adriatic_drcf.dir/power_trace.cpp.o" "gcc" "src/drcf/CMakeFiles/adriatic_drcf.dir/power_trace.cpp.o.d"
  "/root/repo/src/drcf/slot_table.cpp" "src/drcf/CMakeFiles/adriatic_drcf.dir/slot_table.cpp.o" "gcc" "src/drcf/CMakeFiles/adriatic_drcf.dir/slot_table.cpp.o.d"
  "/root/repo/src/drcf/technology.cpp" "src/drcf/CMakeFiles/adriatic_drcf.dir/technology.cpp.o" "gcc" "src/drcf/CMakeFiles/adriatic_drcf.dir/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bus/CMakeFiles/adriatic_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/adriatic_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adriatic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
