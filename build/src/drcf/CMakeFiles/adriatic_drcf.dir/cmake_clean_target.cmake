file(REMOVE_RECURSE
  "libadriatic_drcf.a"
)
