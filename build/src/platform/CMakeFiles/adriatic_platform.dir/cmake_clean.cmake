file(REMOVE_RECURSE
  "CMakeFiles/adriatic_platform.dir/templates.cpp.o"
  "CMakeFiles/adriatic_platform.dir/templates.cpp.o.d"
  "libadriatic_platform.a"
  "libadriatic_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
