file(REMOVE_RECURSE
  "libadriatic_platform.a"
)
