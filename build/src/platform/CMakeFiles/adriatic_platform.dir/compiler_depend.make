# Empty compiler generated dependencies file for adriatic_platform.
# This may be replaced when dependencies are built.
