file(REMOVE_RECURSE
  "CMakeFiles/adriatic_transform.dir/transform.cpp.o"
  "CMakeFiles/adriatic_transform.dir/transform.cpp.o.d"
  "libadriatic_transform.a"
  "libadriatic_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
