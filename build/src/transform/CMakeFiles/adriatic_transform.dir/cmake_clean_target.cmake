file(REMOVE_RECURSE
  "libadriatic_transform.a"
)
