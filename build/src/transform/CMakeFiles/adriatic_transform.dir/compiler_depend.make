# Empty compiler generated dependencies file for adriatic_transform.
# This may be replaced when dependencies are built.
