file(REMOVE_RECURSE
  "libadriatic_memory.a"
)
