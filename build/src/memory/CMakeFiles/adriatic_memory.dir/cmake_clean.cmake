file(REMOVE_RECURSE
  "CMakeFiles/adriatic_memory.dir/memory.cpp.o"
  "CMakeFiles/adriatic_memory.dir/memory.cpp.o.d"
  "libadriatic_memory.a"
  "libadriatic_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
