# Empty dependencies file for adriatic_memory.
# This may be replaced when dependencies are built.
