
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/channel.cpp" "src/comm/CMakeFiles/adriatic_comm.dir/channel.cpp.o" "gcc" "src/comm/CMakeFiles/adriatic_comm.dir/channel.cpp.o.d"
  "/root/repo/src/comm/link.cpp" "src/comm/CMakeFiles/adriatic_comm.dir/link.cpp.o" "gcc" "src/comm/CMakeFiles/adriatic_comm.dir/link.cpp.o.d"
  "/root/repo/src/comm/ofdm.cpp" "src/comm/CMakeFiles/adriatic_comm.dir/ofdm.cpp.o" "gcc" "src/comm/CMakeFiles/adriatic_comm.dir/ofdm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/adriatic_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adriatic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/adriatic_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/adriatic_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
