file(REMOVE_RECURSE
  "CMakeFiles/adriatic_comm.dir/channel.cpp.o"
  "CMakeFiles/adriatic_comm.dir/channel.cpp.o.d"
  "CMakeFiles/adriatic_comm.dir/link.cpp.o"
  "CMakeFiles/adriatic_comm.dir/link.cpp.o.d"
  "CMakeFiles/adriatic_comm.dir/ofdm.cpp.o"
  "CMakeFiles/adriatic_comm.dir/ofdm.cpp.o.d"
  "libadriatic_comm.a"
  "libadriatic_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
