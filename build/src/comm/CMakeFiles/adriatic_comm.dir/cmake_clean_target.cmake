file(REMOVE_RECURSE
  "libadriatic_comm.a"
)
