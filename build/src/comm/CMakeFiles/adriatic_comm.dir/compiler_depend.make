# Empty compiler generated dependencies file for adriatic_comm.
# This may be replaced when dependencies are built.
