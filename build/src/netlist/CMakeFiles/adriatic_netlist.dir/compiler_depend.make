# Empty compiler generated dependencies file for adriatic_netlist.
# This may be replaced when dependencies are built.
