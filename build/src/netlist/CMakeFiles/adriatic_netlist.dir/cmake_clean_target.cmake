file(REMOVE_RECURSE
  "libadriatic_netlist.a"
)
