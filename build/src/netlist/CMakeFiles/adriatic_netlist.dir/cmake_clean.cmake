file(REMOVE_RECURSE
  "CMakeFiles/adriatic_netlist.dir/design.cpp.o"
  "CMakeFiles/adriatic_netlist.dir/design.cpp.o.d"
  "CMakeFiles/adriatic_netlist.dir/elaborate.cpp.o"
  "CMakeFiles/adriatic_netlist.dir/elaborate.cpp.o.d"
  "CMakeFiles/adriatic_netlist.dir/report.cpp.o"
  "CMakeFiles/adriatic_netlist.dir/report.cpp.o.d"
  "libadriatic_netlist.a"
  "libadriatic_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
