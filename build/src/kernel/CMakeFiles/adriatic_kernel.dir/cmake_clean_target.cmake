file(REMOVE_RECURSE
  "libadriatic_kernel.a"
)
