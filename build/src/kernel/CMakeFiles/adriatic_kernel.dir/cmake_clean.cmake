file(REMOVE_RECURSE
  "CMakeFiles/adriatic_kernel.dir/clock.cpp.o"
  "CMakeFiles/adriatic_kernel.dir/clock.cpp.o.d"
  "CMakeFiles/adriatic_kernel.dir/event.cpp.o"
  "CMakeFiles/adriatic_kernel.dir/event.cpp.o.d"
  "CMakeFiles/adriatic_kernel.dir/fiber.cpp.o"
  "CMakeFiles/adriatic_kernel.dir/fiber.cpp.o.d"
  "CMakeFiles/adriatic_kernel.dir/module.cpp.o"
  "CMakeFiles/adriatic_kernel.dir/module.cpp.o.d"
  "CMakeFiles/adriatic_kernel.dir/object.cpp.o"
  "CMakeFiles/adriatic_kernel.dir/object.cpp.o.d"
  "CMakeFiles/adriatic_kernel.dir/process.cpp.o"
  "CMakeFiles/adriatic_kernel.dir/process.cpp.o.d"
  "CMakeFiles/adriatic_kernel.dir/simulation.cpp.o"
  "CMakeFiles/adriatic_kernel.dir/simulation.cpp.o.d"
  "CMakeFiles/adriatic_kernel.dir/time.cpp.o"
  "CMakeFiles/adriatic_kernel.dir/time.cpp.o.d"
  "CMakeFiles/adriatic_kernel.dir/vcd.cpp.o"
  "CMakeFiles/adriatic_kernel.dir/vcd.cpp.o.d"
  "libadriatic_kernel.a"
  "libadriatic_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
