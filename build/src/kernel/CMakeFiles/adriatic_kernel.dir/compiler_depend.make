# Empty compiler generated dependencies file for adriatic_kernel.
# This may be replaced when dependencies are built.
