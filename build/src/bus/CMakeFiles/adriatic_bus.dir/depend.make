# Empty dependencies file for adriatic_bus.
# This may be replaced when dependencies are built.
