file(REMOVE_RECURSE
  "CMakeFiles/adriatic_bus.dir/arbiter.cpp.o"
  "CMakeFiles/adriatic_bus.dir/arbiter.cpp.o.d"
  "CMakeFiles/adriatic_bus.dir/bus.cpp.o"
  "CMakeFiles/adriatic_bus.dir/bus.cpp.o.d"
  "libadriatic_bus.a"
  "libadriatic_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
