file(REMOVE_RECURSE
  "libadriatic_bus.a"
)
