# Empty dependencies file for adriatic_estimate.
# This may be replaced when dependencies are built.
