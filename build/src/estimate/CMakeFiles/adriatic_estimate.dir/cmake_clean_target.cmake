file(REMOVE_RECURSE
  "libadriatic_estimate.a"
)
