file(REMOVE_RECURSE
  "CMakeFiles/adriatic_estimate.dir/efficiency.cpp.o"
  "CMakeFiles/adriatic_estimate.dir/efficiency.cpp.o.d"
  "libadriatic_estimate.a"
  "libadriatic_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
