# Empty dependencies file for adriatic_morphosys.
# This may be replaced when dependencies are built.
