file(REMOVE_RECURSE
  "CMakeFiles/adriatic_morphosys.dir/assembler.cpp.o"
  "CMakeFiles/adriatic_morphosys.dir/assembler.cpp.o.d"
  "CMakeFiles/adriatic_morphosys.dir/kernels.cpp.o"
  "CMakeFiles/adriatic_morphosys.dir/kernels.cpp.o.d"
  "CMakeFiles/adriatic_morphosys.dir/machine.cpp.o"
  "CMakeFiles/adriatic_morphosys.dir/machine.cpp.o.d"
  "CMakeFiles/adriatic_morphosys.dir/rc_array.cpp.o"
  "CMakeFiles/adriatic_morphosys.dir/rc_array.cpp.o.d"
  "libadriatic_morphosys.a"
  "libadriatic_morphosys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adriatic_morphosys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
