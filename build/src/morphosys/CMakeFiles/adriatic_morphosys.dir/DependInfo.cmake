
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/morphosys/assembler.cpp" "src/morphosys/CMakeFiles/adriatic_morphosys.dir/assembler.cpp.o" "gcc" "src/morphosys/CMakeFiles/adriatic_morphosys.dir/assembler.cpp.o.d"
  "/root/repo/src/morphosys/kernels.cpp" "src/morphosys/CMakeFiles/adriatic_morphosys.dir/kernels.cpp.o" "gcc" "src/morphosys/CMakeFiles/adriatic_morphosys.dir/kernels.cpp.o.d"
  "/root/repo/src/morphosys/machine.cpp" "src/morphosys/CMakeFiles/adriatic_morphosys.dir/machine.cpp.o" "gcc" "src/morphosys/CMakeFiles/adriatic_morphosys.dir/machine.cpp.o.d"
  "/root/repo/src/morphosys/rc_array.cpp" "src/morphosys/CMakeFiles/adriatic_morphosys.dir/rc_array.cpp.o" "gcc" "src/morphosys/CMakeFiles/adriatic_morphosys.dir/rc_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adriatic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
