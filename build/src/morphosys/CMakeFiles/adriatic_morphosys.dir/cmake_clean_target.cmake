file(REMOVE_RECURSE
  "libadriatic_morphosys.a"
)
