file(REMOVE_RECURSE
  "CMakeFiles/wlan_receiver.dir/wlan_receiver.cpp.o"
  "CMakeFiles/wlan_receiver.dir/wlan_receiver.cpp.o.d"
  "wlan_receiver"
  "wlan_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
