# Empty compiler generated dependencies file for wlan_receiver.
# This may be replaced when dependencies are built.
