# Empty dependencies file for video_encoder.
# This may be replaced when dependencies are built.
