file(REMOVE_RECURSE
  "CMakeFiles/video_encoder.dir/video_encoder.cpp.o"
  "CMakeFiles/video_encoder.dir/video_encoder.cpp.o.d"
  "video_encoder"
  "video_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
