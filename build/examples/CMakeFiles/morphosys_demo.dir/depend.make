# Empty dependencies file for morphosys_demo.
# This may be replaced when dependencies are built.
