file(REMOVE_RECURSE
  "CMakeFiles/morphosys_demo.dir/morphosys_demo.cpp.o"
  "CMakeFiles/morphosys_demo.dir/morphosys_demo.cpp.o.d"
  "morphosys_demo"
  "morphosys_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphosys_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
