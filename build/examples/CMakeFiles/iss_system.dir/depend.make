# Empty dependencies file for iss_system.
# This may be replaced when dependencies are built.
