file(REMOVE_RECURSE
  "CMakeFiles/iss_system.dir/iss_system.cpp.o"
  "CMakeFiles/iss_system.dir/iss_system.cpp.o.d"
  "iss_system"
  "iss_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iss_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
