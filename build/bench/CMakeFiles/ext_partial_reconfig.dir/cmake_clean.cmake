file(REMOVE_RECURSE
  "CMakeFiles/ext_partial_reconfig.dir/ext_partial_reconfig.cpp.o"
  "CMakeFiles/ext_partial_reconfig.dir/ext_partial_reconfig.cpp.o.d"
  "ext_partial_reconfig"
  "ext_partial_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_partial_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
