# Empty compiler generated dependencies file for ext_partial_reconfig.
# This may be replaced when dependencies are built.
