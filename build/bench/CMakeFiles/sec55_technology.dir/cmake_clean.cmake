file(REMOVE_RECURSE
  "CMakeFiles/sec55_technology.dir/sec55_technology.cpp.o"
  "CMakeFiles/sec55_technology.dir/sec55_technology.cpp.o.d"
  "sec55_technology"
  "sec55_technology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
