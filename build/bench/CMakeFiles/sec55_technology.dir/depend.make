# Empty dependencies file for sec55_technology.
# This may be replaced when dependencies are built.
