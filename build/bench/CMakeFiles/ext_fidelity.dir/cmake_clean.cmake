file(REMOVE_RECURSE
  "CMakeFiles/ext_fidelity.dir/ext_fidelity.cpp.o"
  "CMakeFiles/ext_fidelity.dir/ext_fidelity.cpp.o.d"
  "ext_fidelity"
  "ext_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
