# Empty compiler generated dependencies file for ext_loader_priority.
# This may be replaced when dependencies are built.
