file(REMOVE_RECURSE
  "CMakeFiles/ext_loader_priority.dir/ext_loader_priority.cpp.o"
  "CMakeFiles/ext_loader_priority.dir/ext_loader_priority.cpp.o.d"
  "ext_loader_priority"
  "ext_loader_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_loader_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
