# Empty compiler generated dependencies file for meth_sim_speed.
# This may be replaced when dependencies are built.
