# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for meth_sim_speed.
