file(REMOVE_RECURSE
  "CMakeFiles/meth_sim_speed.dir/meth_sim_speed.cpp.o"
  "CMakeFiles/meth_sim_speed.dir/meth_sim_speed.cpp.o.d"
  "meth_sim_speed"
  "meth_sim_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meth_sim_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
