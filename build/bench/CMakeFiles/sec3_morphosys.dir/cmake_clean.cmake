file(REMOVE_RECURSE
  "CMakeFiles/sec3_morphosys.dir/sec3_morphosys.cpp.o"
  "CMakeFiles/sec3_morphosys.dir/sec3_morphosys.cpp.o.d"
  "sec3_morphosys"
  "sec3_morphosys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_morphosys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
