# Empty dependencies file for sec3_morphosys.
# This may be replaced when dependencies are built.
