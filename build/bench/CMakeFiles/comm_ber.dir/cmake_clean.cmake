file(REMOVE_RECURSE
  "CMakeFiles/comm_ber.dir/comm_ber.cpp.o"
  "CMakeFiles/comm_ber.dir/comm_ber.cpp.o.d"
  "comm_ber"
  "comm_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
