# Empty dependencies file for comm_ber.
# This may be replaced when dependencies are built.
