# Empty dependencies file for sec53_context_sweep.
# This may be replaced when dependencies are built.
