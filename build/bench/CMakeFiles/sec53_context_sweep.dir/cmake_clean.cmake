file(REMOVE_RECURSE
  "CMakeFiles/sec53_context_sweep.dir/sec53_context_sweep.cpp.o"
  "CMakeFiles/sec53_context_sweep.dir/sec53_context_sweep.cpp.o.d"
  "sec53_context_sweep"
  "sec53_context_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_context_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
