file(REMOVE_RECURSE
  "CMakeFiles/fig2_efficiency.dir/fig2_efficiency.cpp.o"
  "CMakeFiles/fig2_efficiency.dir/fig2_efficiency.cpp.o.d"
  "fig2_efficiency"
  "fig2_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
