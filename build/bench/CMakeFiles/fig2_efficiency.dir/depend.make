# Empty dependencies file for fig2_efficiency.
# This may be replaced when dependencies are built.
