# Empty compiler generated dependencies file for sec51_partitioning.
# This may be replaced when dependencies are built.
