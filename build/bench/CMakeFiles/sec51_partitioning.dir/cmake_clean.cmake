file(REMOVE_RECURSE
  "CMakeFiles/sec51_partitioning.dir/sec51_partitioning.cpp.o"
  "CMakeFiles/sec51_partitioning.dir/sec51_partitioning.cpp.o.d"
  "sec51_partitioning"
  "sec51_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec51_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
