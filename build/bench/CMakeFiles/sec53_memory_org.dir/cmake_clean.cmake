file(REMOVE_RECURSE
  "CMakeFiles/sec53_memory_org.dir/sec53_memory_org.cpp.o"
  "CMakeFiles/sec53_memory_org.dir/sec53_memory_org.cpp.o.d"
  "sec53_memory_org"
  "sec53_memory_org.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_memory_org.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
