# Empty dependencies file for sec53_memory_org.
# This may be replaced when dependencies are built.
