file(REMOVE_RECURSE
  "CMakeFiles/sec52_transform.dir/sec52_transform.cpp.o"
  "CMakeFiles/sec52_transform.dir/sec52_transform.cpp.o.d"
  "sec52_transform"
  "sec52_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
