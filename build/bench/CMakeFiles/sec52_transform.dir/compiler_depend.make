# Empty compiler generated dependencies file for sec52_transform.
# This may be replaced when dependencies are built.
